#!/usr/bin/env python
"""CI lint: every raised ReproError must carry an explicit error code.

Two AST passes over the source tree:

1. **Class discovery** (to a fixpoint, so ordering across files does not
   matter): collect every class transitively derived from ``ReproError``,
   remembering its ``code_prefix`` (inherited when not overridden) and
   whether its ``__init__`` installs a default code (e.g. DeadlockError's
   ``kwargs.setdefault("code", ...)``), which exempts bare raises.
2. **Raise checking**: every ``raise <ErrorClass>(...)`` must pass a
   ``code=`` keyword (or splat ``**kwargs`` we cannot see through).
   Literal codes must be well-formed ``RPR-<letter><3 digits>`` and agree
   with the raising class's category prefix.

Usage: python tools/lint_diagnostics.py [ROOT ...]   (default: src/repro)
Exit status is the number of violations (capped at 1 for CI semantics).
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

CODE_RE = re.compile(r"^RPR-[A-Z]\d{3}$")
ROOT_CLASS = "ReproError"


def _terminal_name(node: ast.AST) -> str | None:
    """`Name` or dotted `Attribute` → its final identifier."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class ErrorClassInfo:
    def __init__(self, name: str, bases: list[str], prefix: str | None,
                 defaults_code: bool):
        self.name = name
        self.bases = bases
        self.prefix = prefix          # explicit code_prefix, if assigned
        self.defaults_code = defaults_code


def _scan_classes(tree: ast.AST) -> list[ErrorClassInfo]:
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        bases = [b for b in (_terminal_name(x) for x in node.bases) if b]
        prefix = None
        defaults_code = False
        for item in node.body:
            if isinstance(item, ast.Assign):
                targets = [t.id for t in item.targets
                           if isinstance(t, ast.Name)]
                if "code_prefix" in targets and \
                        isinstance(item.value, ast.Constant) and \
                        isinstance(item.value.value, str):
                    prefix = item.value.value
            elif isinstance(item, ast.FunctionDef) and \
                    item.name == "__init__":
                for call in ast.walk(item):
                    if isinstance(call, ast.Call) and \
                            isinstance(call.func, ast.Attribute) and \
                            call.func.attr == "setdefault" and \
                            call.args and \
                            isinstance(call.args[0], ast.Constant) and \
                            call.args[0].value == "code":
                        defaults_code = True
        found.append(ErrorClassInfo(node.name, bases, prefix, defaults_code))
    return found


def collect_error_classes(trees: dict[Path, ast.AST]):
    """Fixpoint over all files: name → (prefix, defaults_code)."""
    all_classes = [ci for tree in trees.values()
                   for ci in _scan_classes(tree)]
    known: dict[str, ErrorClassInfo] = {}
    member = {ROOT_CLASS}
    changed = True
    while changed:
        changed = False
        for ci in all_classes:
            if ci.name in member:
                continue
            if any(b in member for b in ci.bases):
                member.add(ci.name)
                known[ci.name] = ci
                changed = True
    # resolve inherited prefixes / default-code flags
    resolved: dict[str, tuple[str | None, bool]] = {
        ROOT_CLASS: ("RPR-E", False),
    }

    def resolve(name: str, seen: frozenset = frozenset()):
        if name in resolved:
            return resolved[name]
        ci = known.get(name)
        if ci is None or name in seen:
            return (None, False)
        prefix, defaults = ci.prefix, ci.defaults_code
        for base in ci.bases:
            bp, bd = resolve(base, seen | {name})
            prefix = prefix or bp
            defaults = defaults or bd
        resolved[name] = (prefix, defaults)
        return resolved[name]

    for name in list(known):
        resolve(name)
    return resolved


def check_raises(path: Path, tree: ast.AST,
                 classes: dict[str, tuple[str | None, bool]]) -> list[str]:
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        call = node.exc
        if not isinstance(call, ast.Call):
            continue  # bare re-raise / raise of a variable
        name = _terminal_name(call.func)
        if name not in classes:
            continue
        prefix, defaults_code = classes[name]
        where = f"{path}:{node.lineno}"
        if any(kw.arg is None for kw in call.keywords):
            continue  # **kwargs splat — can't see through it
        code_kw = next((kw for kw in call.keywords if kw.arg == "code"),
                       None)
        if code_kw is None:
            if defaults_code:
                continue
            problems.append(
                f"{where}: raise {name}(...) without an explicit code= "
                f"(expected {prefix or 'RPR-?'}NNN)")
            continue
        if isinstance(code_kw.value, ast.Constant) and \
                isinstance(code_kw.value.value, str):
            code = code_kw.value.value
            if not CODE_RE.match(code):
                problems.append(
                    f"{where}: raise {name}(code={code!r}) is not of the "
                    f"form RPR-<letter><3 digits>")
            elif prefix is not None and not code.startswith(prefix):
                problems.append(
                    f"{where}: raise {name}(code={code!r}) does not match "
                    f"the class's category prefix {prefix!r}")
    return problems


def main(argv: list[str]) -> int:
    roots = [Path(a) for a in argv[1:]] or [Path("src/repro")]
    trees: dict[Path, ast.AST] = {}
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            try:
                trees[path] = ast.parse(path.read_text(),
                                        filename=str(path))
            except SyntaxError as exc:
                print(f"{path}: not parseable: {exc}", file=sys.stderr)
                return 1
    classes = collect_error_classes(trees)
    problems = []
    for path, tree in sorted(trees.items()):
        problems.extend(check_raises(path, tree, classes))
    for p in problems:
        print(p)
    n_raises = sum(
        1 for tree in trees.values() for node in ast.walk(tree)
        if isinstance(node, ast.Raise) and isinstance(node.exc, ast.Call)
        and _terminal_name(node.exc.func) in classes
    )
    print(f"lint_diagnostics: {len(classes)} ReproError classes, "
          f"{n_raises} coded raise sites, {len(problems)} problem(s)",
          file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
