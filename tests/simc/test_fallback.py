"""Compiled->interp fallback: silent in results, loud in diagnostics."""

import pytest

from repro import simc
from repro.apps.loopback import build_loopback, expected_output
from repro.core.synth import synthesize
from repro.errors import SimCompileError
from repro.hls.cyclemodel import Channel, ProcessExec
from repro.rtl.sim import RtlSim
from repro.runtime.hwexec import execute
from tests.helpers import compile_one

SRC = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) { co_stream_write(output, x + 7); }
  co_stream_close(output);
}
"""


@pytest.fixture(autouse=True)
def fresh_memo():
    simc.clear_memo()
    yield
    simc.clear_memo()


@pytest.fixture
def broken_codegen(monkeypatch):
    """Make every codegen attempt fail as if on an unsupported construct."""

    def boom(*a, **kw):
        raise SimCompileError("synthetic unsupported construct",
                              code="RPR-K020")

    monkeypatch.setattr("repro.simc.rtlgen.generate_rtl_source", boom)
    monkeypatch.setattr("repro.simc.schedgen.generate_sched_source", boom)


def test_fallback_returns_working_interpreter(broken_codegen):
    cp = compile_one(SRC)
    diags = []
    cin = Channel("i", depth=16)
    cout = Channel("o", unbounded=True)
    sim = simc.make_rtl_sim(cp.rtl, {"input": cin, "output": cout},
                            backend="compiled", diagnostics=diags)
    assert type(sim) is RtlSim  # the plain interpreter, not a subclass
    assert sim.backend == "interp"
    assert len(diags) == 1
    assert diags[0]["code"] == simc.FALLBACK_CODE == "RPR-K101"
    assert diags[0]["severity"] == "warning"
    assert "RPR-K020" in " ".join(diags[0].get("notes", ()))

    pe = simc.make_process_exec(cp.schedule, {"input": cin, "output": cout},
                                backend="compiled", diagnostics=diags)
    assert type(pe) is ProcessExec
    assert len(diags) == 2


def test_strict_mode_raises_instead_of_falling_back(broken_codegen):
    cp = compile_one(SRC)
    with pytest.raises(SimCompileError) as ei:
        simc.make_rtl_sim(cp.rtl, {"input": Channel("i"),
                                   "output": Channel("o")},
                          backend="compiled", strict=True)
    assert ei.value.code == "RPR-K020"
    with pytest.raises(SimCompileError):
        simc.make_process_exec(cp.schedule, {"input": Channel("i"),
                                             "output": Channel("o")},
                               backend="compiled", strict=True)


def test_execute_surfaces_fallback_and_still_completes(broken_codegen):
    """The product path: a design the compiled backend rejects must run
    to the same answer on the interpreter, with an RPR-K101 warning in
    ``HwResult.backend_diagnostics`` (never a hard failure)."""
    data = list(range(1, 17))
    image = synthesize(build_loopback(2, data=data), assertions="optimized")
    res = execute(image, sim_backend="compiled")
    assert res.completed
    assert res.outputs["drain"] == expected_output(data)
    assert res.backend_diagnostics, "fallback must be recorded"
    assert all(d["code"] == "RPR-K101" for d in res.backend_diagnostics)
    assert all(st["backend"] == "interp"
               for st in res.process_stats.values())


def test_unknown_backend_name_is_rejected():
    with pytest.raises(SimCompileError) as ei:
        simc.resolve_backend("jit")
    assert ei.value.code == "RPR-K001"
    assert simc.resolve_backend(None) == simc.DEFAULT_BACKEND
    assert simc.resolve_backend("interp") == "interp"
