"""Lane-vs-scalar bit-identity of the batched (SoA) execution mode.

The batched executor's contract is stronger than "same outputs": lane i
of ``execute_batch(image, lanes)`` must reproduce *everything*
observable about ``execute(image)`` run scalar with lane i's feed and
faults — outputs, cycle/stall counters, assertion failures and abort
sites, watchdog classification, quarantine lists and fault event logs —
while the other lanes keep running. These tests pin that contract on the
paper's example applications across lane counts, assertion levels and
injected runtime faults.
"""

import pytest

from repro.apps.edge_detect import build_edge_app
from repro.apps.loopback import build_loopback, expected_output
from repro.apps.tripledes import build_tdes_app
from repro.core.synth import synthesize
from repro.faults.runtime import (
    ChannelBitFlip,
    RegisterUpset,
    StuckAtBit,
)
from repro.runtime.hwexec import LaneSpec, execute, execute_batch
from repro.runtime.watchdog import WatchdogConfig

TEXT = b"In-circuit!"
LEVELS = ("none", "unoptimized", "optimized")

APPS = {
    "loopback": lambda: build_loopback(3, data=list(range(1, 17))),
    "edge": lambda: build_edge_app(width=16, height=8),
    "tripledes": lambda: build_tdes_app(TEXT),
}

_images: dict = {}


def image_for(app_name: str, level: str):
    key = (app_name, level)
    if key not in _images:
        _images[key] = synthesize(APPS[app_name](), assertions=level)
    return _images[key]


def full_signature(res) -> dict:
    """Everything a batched lane must reproduce from the scalar run.

    ``process_stats`` drops the ``backend`` tag — that is the one field
    that legitimately differs between the executors.
    """
    return {
        "completed": res.completed,
        "cycles": res.cycles,
        "reason": res.reason,
        "outputs": {k: list(v) for k, v in sorted(res.outputs.items())},
        "stderr": list(res.stderr),
        "failures": sorted((name, site.ordinal, site.expr_text)
                           for name, site in res.failures),
        "aborted_by": repr(res.aborted_by),
        "first_failure_cycle": res.first_failure_cycle,
        "quarantined": sorted(res.quarantined),
        "watchdog": repr(res.watchdog),
        "process_stats": {
            name: {k: v for k, v in st.items() if k != "backend"}
            for name, st in sorted(res.process_stats.items())
        },
        "fault_events": list(res.fault_events),
    }


def scalar_run(image, feed=None, faults=(), watchdog=None):
    """Scalar reference with an optional feeder-data override."""
    for f in faults:
        f.reset()
    sd = image.app.streams.get("feed")
    saved = sd.feeder_data if sd is not None else None
    try:
        if feed is not None and sd is not None:
            sd.feeder_data = list(feed)
        return execute(image, faults=faults, watchdog=watchdog)
    finally:
        if sd is not None:
            sd.feeder_data = saved


def lane_feed(i: int) -> list[int]:
    """Deterministic per-lane loopback stimulus; lane 2 trips the
    ``buf[i & 15] > 0`` stage assertion with a zero word."""
    if i == 0:
        return list(range(1, 17))
    if i == 2:
        return [5, 0, 7]
    return [(3 * i + k) % 251 + 1 for k in range(8 + (i % 5))]


@pytest.mark.parametrize("n", [1, 2, 7, 64])
def test_lane_count_sweep_loopback(n):
    image = image_for("loopback", "optimized")
    feeds = [lane_feed(i) for i in range(n)]
    batch = execute_batch(
        image, [LaneSpec(feeder_data={"feed": f}) for f in feeds])
    assert len(batch) == n
    for i, res in enumerate(batch):
        ref = scalar_run(image, feed=feeds[i])
        assert full_signature(res) == full_signature(ref), f"lane {i}"
    # sanity on content, not just self-consistency: clean lanes loop back
    # their feed, the zero-word lane aborts on the stage assertion
    assert batch[0].outputs["drain"] == expected_output(feeds[0])
    if n > 2:
        assert not batch[2].completed and batch[2].failures


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("app_name", sorted(APPS))
def test_example_apps_all_levels(app_name, level):
    image = image_for(app_name, level)
    batch = execute_batch(image, [LaneSpec(), LaneSpec()])
    ref = full_signature(execute(image))
    for i, res in enumerate(batch):
        assert full_signature(res) == ref, f"lane {i}"
        assert res.completed
    for st in batch[0].process_stats.values():
        assert st["backend"] in ("batched", "interp")


LANE_FAULTS = [
    (),
    (ChannelBitFlip(target="link0", word_index=3, bit=5),),
    (RegisterUpset(target="stage1", cycle=20, reg_index=1, bit=2),),
    (StuckAtBit(target="link1", bit=0, stuck_value=1),),
]


@pytest.mark.parametrize("level", ["none", "optimized"])
def test_per_lane_fault_injection(level):
    """Each lane gets its own fault set; classifications, event logs and
    watchdog reasons must match a scalar run of the same fault."""
    image = image_for("loopback", level)
    batch = execute_batch(
        image, [LaneSpec(faults=tuple(f)) for f in LANE_FAULTS])
    for i, faults in enumerate(LANE_FAULTS):
        res = batch[i]
        events_batched = list(res.fault_events)
        ref = scalar_run(image, faults=faults)
        assert full_signature(res) == full_signature(ref), f"lane {i}"
        assert events_batched == list(ref.fault_events)
    # the clean lane is unaffected by its faulted siblings
    assert batch[0].completed
    assert batch[0].outputs["drain"] == expected_output(range(1, 17))


def test_watchdog_reason_per_lane():
    """A lane that blows its cycle budget is classified per lane, with
    the same watchdog report a scalar run under the same config gets."""
    image = image_for("loopback", "optimized")
    cfg = WatchdogConfig(max_cycles=40, idle_limit=64)
    feeds = [list(range(1, 17)), [9, 9, 9]]
    batch = execute_batch(
        image, [LaneSpec(feeder_data={"feed": f}) for f in feeds],
        watchdog=cfg)
    for i, res in enumerate(batch):
        ref = scalar_run(image, feed=feeds[i], watchdog=cfg)
        assert res.reason == ref.reason, f"lane {i}"
        assert full_signature(res) == full_signature(ref), f"lane {i}"
    # the 16-word lane blows the 40-cycle budget while its short sibling
    # completes — per-lane classification, not batch-wide
    assert not batch[0].completed and batch[0].watchdog is not None
    assert batch[1].completed and batch[1].watchdog is None


def test_interp_backend_uses_lanewise_fallback():
    """``sim_backend="interp"`` must still honor the batch contract —
    through per-lane scalar interpreters, bit-identically."""
    image = image_for("loopback", "optimized")
    batch = execute_batch(image, [LaneSpec(), LaneSpec()],
                          sim_backend="interp")
    ref = full_signature(execute(image, sim_backend="interp"))
    for res in batch:
        assert full_signature(res) == ref
        for st in res.process_stats.values():
            assert st["backend"] == "interp"


def test_empty_batch_rejected():
    from repro.errors import SimCompileError

    image = image_for("loopback", "none")
    with pytest.raises(SimCompileError) as exc:
        execute_batch(image, [])
    assert exc.value.code == "RPR-K030"


# ---- consumers --------------------------------------------------------------


def test_campaign_batched_matches_scalar(tmp_path):
    from repro.faults.campaign import run_campaign

    def key(oc):
        return (oc.scenario, oc.level, oc.classification, oc.reason,
                oc.cycles, oc.detection_latency, oc.failures,
                oc.quarantined, oc.events)

    scalar = run_campaign("loopback", levels=("none", "optimized"),
                          seed=0, count=6, cache_root=str(tmp_path / "c1"))
    batched = run_campaign("loopback", levels=("none", "optimized"),
                           seed=0, count=6, batch_lanes=8,
                           cache_root=str(tmp_path / "c2"))
    assert [key(o) for o in scalar.outcomes] == \
        [key(o) for o in batched.outcomes]
    assert not batched.harness_errors


def test_difftest_scalar_vs_batched_phase():
    from repro.difftest.generator import GenConfig, generate
    from repro.difftest.oracle import run_difftest

    for seed in range(6):
        prog = generate(seed, GenConfig())
        report = run_difftest(prog.render(), prog.feed,
                              filename=f"seed{seed}.c", batch_lanes=4)
        assert report.ok, report.divergence
        assert report.batch_lanes == 4


def test_difftest_batch_lanes_validation():
    from repro.difftest.oracle import DifftestError, run_difftest

    with pytest.raises(DifftestError) as exc:
        run_difftest("void p(co_stream a) { }", [], batch_lanes=-1)
    assert exc.value.code == "RPR-Y010"


def test_difftest_spec_fingerprint_isolates_batch_lanes():
    from repro.difftest.runner import DifftestSpec

    plain = DifftestSpec(name="fp", seeds=(0, 4))
    batched = DifftestSpec(name="fp", seeds=(0, 4), batch_lanes=4)
    assert plain.fingerprint() != batched.fingerprint()
    # disabled batching keeps historical run ids resolvable
    assert plain.fingerprint() == \
        DifftestSpec(name="fp", seeds=(0, 4), batch_lanes=0).fingerprint()


def test_sweep_point_lane_validation(tmp_path):
    from repro.lab.cache import SynthesisCache
    from repro.lab.sweep import AppSpec, SweepPoint, evaluate_point_cached

    point = SweepPoint(point_id="lb/opt",
                       app=AppSpec.make("loopback", n=3),
                       level="optimized")
    record = evaluate_point_cached(
        point, SynthesisCache(str(tmp_path)), validate_lanes=3)
    assert record["validate_lanes"] == 3
    assert record["lane_check"] == "ok"
