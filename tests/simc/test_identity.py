"""Bit-identity of the compiled backend against the interpreters.

The compiled backend's entire contract is "same observable behavior,
fewer dict lookups" — these tests pin that contract on the paper's
example applications (including the pipelined assertion checkers) and
under runtime fault injection.
"""

import pytest

from repro.apps.edge_detect import build_edge_app, golden_edge
from repro.apps.loopback import build_loopback
from repro.apps.tripledes import build_tdes_app, expected_blocks
from repro.core.synth import synthesize
from repro.faults.runtime import ChannelBitFlip, RegisterUpset
from repro.runtime.hwexec import execute
from repro.simc.bench import _hw_signature

TEXT = b"Now is the time for all good men"


def both(image, **kw):
    interp = execute(image, sim_backend="interp", **kw)
    compiled = execute(image, sim_backend="compiled", **kw)
    assert compiled.backend_diagnostics == []
    for name, st in compiled.process_stats.items():
        assert st["backend"] == "compiled", name
    return interp, compiled


APPS = {
    "loopback": lambda: build_loopback(3, data=list(range(1, 33))),
    "edge": lambda: build_edge_app(width=16, height=8),
    "tripledes": lambda: build_tdes_app(TEXT),
}


@pytest.mark.parametrize("app_name", sorted(APPS))
@pytest.mark.parametrize("level", ["none", "unoptimized", "optimized"])
def test_execute_identity_on_example_apps(app_name, level):
    image = synthesize(APPS[app_name](), assertions=level)
    interp, compiled = both(image)
    assert _hw_signature(interp) == _hw_signature(compiled)
    assert interp.completed and compiled.completed


def test_compiled_tripledes_output_is_the_plaintext():
    image = synthesize(build_tdes_app(TEXT), assertions="optimized")
    res = execute(image, sim_backend="compiled")
    assert res.outputs["plain"] == expected_blocks(TEXT)


def test_compiled_edge_output_matches_golden():
    app = build_edge_app(width=16, height=8)
    pixels = app.streams["pixels_in"].feeder_data[2:]
    image = synthesize(app, assertions="optimized")
    res = execute(image, sim_backend="compiled")
    assert res.outputs["edges_out"] == golden_edge(16, 8, pixels)


def test_pipelined_checker_actually_compiles():
    """The optimized level adds pipelined checker processes; they must
    run through the compiled pipeline path, not an interpreter fallback
    (that was the difference between 2.7x and 5.5x on Triple-DES)."""
    from repro import simc
    from repro.hls.cyclemodel import Channel

    image = synthesize(build_tdes_app(TEXT), assertions="optimized")
    checkers = [n for n in image.compiled if "__chk" in n]
    assert checkers, "optimized tdes should have checker processes"
    taps = {t: Channel(t, unbounded=True) for t in image.app.taps}
    for name in checkers:
        cp = image.compiled[name]
        pipelined = set(cp.schedule.pipelines)
        if not pipelined:
            continue
        binding = {param: Channel(param, unbounded=True)
                   for param in image.app.stream_binding(name)}
        pe = simc.make_process_exec(cp.schedule, binding, taps=taps,
                                    strict=True)
        assert pe.backend == "compiled"
        assert set(pe._pipe_fns) == pipelined
        return
    pytest.skip("no pipelined checker in this configuration")


def test_assertion_failure_identity():
    """A firing assertion must abort identically under both backends."""
    # header says 32x16 but the hardware is configured 16x8 — the
    # paper's own demonstration scenario
    app = build_edge_app(width=16, height=8, header=(32, 16))
    image = synthesize(app, assertions="optimized")
    interp, compiled = both(image)
    assert _hw_signature(interp) == _hw_signature(compiled)
    assert not compiled.completed or compiled.failures


@pytest.mark.parametrize("fault", [
    ChannelBitFlip(target="link0", word_index=3, bit=5),
    RegisterUpset(target="stage1", cycle=20, reg_index=1, bit=2),
])
def test_runtime_fault_equivalence(fault):
    """Injected faults must corrupt both backends identically — the
    fault campaign's verdicts cannot depend on the simulator flavor."""
    image = synthesize(build_loopback(3, data=list(range(1, 33))),
                       assertions="optimized")
    fault.reset()
    interp = execute(image, sim_backend="interp", faults=(fault,))
    interp_events = list(fault.events)
    fault.reset()
    compiled = execute(image, sim_backend="compiled", faults=(fault,))
    assert _hw_signature(interp) == _hw_signature(compiled)
    assert interp_events == list(fault.events)
