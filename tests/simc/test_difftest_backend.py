"""Difftest with compiled lockstep legs, and the lazy register capture.

Two properties are pinned here:

* ``--sim-backend=compiled`` adds the specialized simulators as strict
  legs of the lockstep oracle — they must agree with the interpreters
  on clean programs and seeds, and any *interpreter* bug reintroduced
  through the test seam shows up as a backend divergence;
* the lazy per-cycle register capture (itemgetter + ring buffer) must
  not change what divergences look like — same first-register
  localization as the eager scan, plus the new ``reg_window`` context.
"""

import pytest

from repro.difftest.generator import generate
from repro.difftest.oracle import REG_WINDOW, run_difftest

IDENTITY = """
void dt(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) { co_stream_write(output, x); }
  co_stream_close(output);
}
"""

DIV8 = """
void dt(co_stream input, co_stream output) {
  uint32 x; int8 v;
  while (co_stream_read(input, &x)) {
    v = ((int8)x) / 3;
    co_stream_write(output, (uint32)(v));
  }
  co_stream_close(output);
}
"""


def test_clean_program_agrees_with_compiled_legs():
    r = run_difftest(IDENTITY, [1, 2, 3], sim_backend="compiled")
    assert r.ok
    assert r.outputs["output"] == [1, 2, 3]


def test_generated_seeds_agree_with_compiled_legs():
    for seed in range(8):
        prog = generate(seed)
        r = run_difftest(prog.render(), prog.feed, filename=f"s{seed}.c",
                         sim_backend="compiled")
        assert r.ok, f"seed {seed}: {r.divergence.describe()}"


def test_interp_bug_caught_as_backend_divergence(monkeypatch):
    """Reintroduce the signed-division bug into the *interpreted* RTL
    simulator only: the compiled leg (which does not route through the
    seam) stays correct, so the oracle reports an rtl-vs-compiled or
    cyclemodel-vs-rtl divergence — the compiled legs are a real oracle,
    not a mirror of the interpreter."""
    monkeypatch.setattr("repro.rtl.sim._value_operands",
                        lambda a, b, expr: (a, b))
    r = run_difftest(DIV8, [0xF3], sim_backend="compiled")
    assert not r.ok
    d = r.divergence
    assert d.phase in ("rtl-vs-compiled", "cyclemodel-vs-rtl")


def test_localization_is_unchanged_by_lazy_capture(monkeypatch):
    """The ring-buffer capture must reproduce the eager scan's verdict
    byte for byte: same phase/kind/stream/signal on the historical
    signed-division reproduction (see tests/difftest/test_oracle.py)."""
    monkeypatch.setattr("repro.rtl.sim._value_operands",
                        lambda a, b, expr: (a, b))
    r = run_difftest(DIV8, [0xF3])
    assert not r.ok
    d = r.divergence
    assert d.phase == "cyclemodel-vs-rtl"
    assert d.kind == "stream-data"
    assert d.stream == "output"
    assert d.signal is not None and d.signal.startswith("r_")
    assert d.values["cyclemodel"] != d.values["rtl"]

    # the new context: a bounded window of pre-divergence register state
    assert r.reg_window
    assert len(r.reg_window) <= REG_WINDOW
    last = r.reg_window[-1]
    assert set(last) == {"cycle", "cyclemodel", "rtl"}
    assert last["cycle"] <= d.cycle
    # the window's final snapshot contains the diverging register
    reg = d.signal[2:]  # strip the r_ prefix
    assert last["cyclemodel"][reg] != last["rtl"][reg]


def test_reg_window_is_empty_on_agreement():
    r = run_difftest(IDENTITY, [5, 6], sim_backend="compiled")
    assert r.ok
    assert r.reg_window == []


def test_unknown_backend_is_a_harness_error():
    from repro.difftest.oracle import DifftestError

    with pytest.raises(DifftestError):
        run_difftest(IDENTITY, [1], sim_backend="jit")
