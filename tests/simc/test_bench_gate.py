"""Baseline-gate semantics of ``compare_bench`` (``repro bench``).

Regression suite for the gate's degraded modes: a freshly landed bench
has no baseline entry yet (the state every new bench ships in — it used
to key-error the whole gate), and a hand-edited or truncated baseline
can lack ``speedup`` fields entirely. Both must degrade to a recorded
note, never a crash, while real regressions still gate.
"""

from repro.simc.bench import compare_bench


def doc(entries, schema=1):
    return {"schema": schema, "quick": False, "entries": entries,
            "geomean_speedup": 5.0}


def entry(name, speedup, kind="hwexec", **extra):
    return {"name": name, "kind": kind, "speedup": speedup, **extra}


def test_clean_pass_with_matching_entries():
    base = doc([entry("loopback3", 6.0), entry("rtl_kernel", 10.0, "rtl")])
    cur = doc([entry("loopback3", 5.9), entry("rtl_kernel", 11.2, "rtl")])
    notes: list[str] = []
    assert compare_bench(cur, base, notes=notes) == []
    assert notes == []


def test_regression_below_threshold_floor_is_flagged():
    base = doc([entry("loopback3", 10.0)])
    cur = doc([entry("loopback3", 6.0)])  # floor at 30% is 7.0
    problems = compare_bench(cur, base, threshold=0.30)
    assert len(problems) == 1
    assert "loopback3/hwexec" in problems[0]
    assert "below" in problems[0]


def test_new_bench_without_baseline_entry_records_only():
    """The satellite bug: adding a bench (here the batched one) before
    the baseline is regenerated must NOT fail the gate — it is noted as
    recorded-only and starts gating once the baseline includes it."""
    base = doc([entry("loopback3", 6.0)])
    cur = doc([entry("loopback3", 6.0),
               entry("loopback_batch", 8.9, "batch", batch_speedup=1.5)])
    notes: list[str] = []
    assert compare_bench(cur, base, notes=notes) == []
    assert len(notes) == 1
    assert "loopback_batch/batch" in notes[0]
    assert "no baseline entry" in notes[0]
    # and without a notes sink it still just passes (cmd_bench's
    # pre-fix call shape)
    assert compare_bench(cur, base) == []


def test_entry_missing_from_current_still_gates():
    base = doc([entry("loopback3", 6.0), entry("tripledes", 5.5)])
    cur = doc([entry("loopback3", 6.0)])
    problems = compare_bench(cur, base)
    assert len(problems) == 1
    assert "tripledes/hwexec" in problems[0]
    assert "missing" in problems[0]


def test_unusable_speedup_notes_and_skips():
    """A truncated/hand-edited baseline without a numeric speedup must
    degrade the gate for that entry, not crash the whole run."""
    base = doc([{"name": "loopback3", "kind": "hwexec"},  # no speedup
                entry("tripledes", None),
                entry("rtl_kernel", 10.0, "rtl")])
    cur = doc([entry("loopback3", 6.0), entry("tripledes", 5.5),
               entry("rtl_kernel", 10.1, "rtl")])
    notes: list[str] = []
    assert compare_bench(cur, base, notes=notes) == []
    assert len(notes) == 2
    assert all("no usable speedup" in n for n in notes)


def test_malformed_entries_without_identity_are_ignored():
    base = doc([entry("loopback3", 6.0), {"speedup": 99.0}])
    cur = doc([entry("loopback3", 6.0), {"kind": "hwexec"}])
    notes: list[str] = []
    assert compare_bench(cur, base, notes=notes) == []
    assert notes == []


def test_schema_mismatch_short_circuits():
    base = doc([entry("loopback3", 6.0)], schema=0)
    cur = doc([entry("loopback3", 1.0)])
    problems = compare_bench(cur, base)
    assert len(problems) == 1
    assert "regenerate the baseline" in problems[0]


def test_committed_baseline_gates_itself_cleanly():
    """The repo's committed baseline must pass its own gate and carry the
    batched entry at the issue's >=5x acceptance bar."""
    import json
    import os

    path = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "benchmarks", "results", "BENCH_sim.json")
    with open(path) as fh:
        baseline = json.load(fh)
    notes: list[str] = []
    assert compare_bench(baseline, baseline, notes=notes) == []
    assert notes == []
    by_name = {e["name"]: e for e in baseline["entries"]}
    batch = by_name["loopback_batch"]
    assert batch["kind"] == "batch"
    assert batch["speedup"] >= 5.0
    assert batch["batch_speedup"] > 1.0
