"""Content-addressed codegen caching (memo + lab-cache tiers)."""

import pytest

from repro.hls.cyclemodel import Channel
from repro.lab.cache import SynthesisCache
from repro.simc import (
    CompiledProcessExec,
    clear_memo,
    rtl_sim_source,
    sched_exec_source,
)
from tests.helpers import compile_one

SRC = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    co_stream_write(output, x * 3 + 1);
  }
  co_stream_close(output);
}
"""


@pytest.fixture
def cp():
    return compile_one(SRC)


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_memo()
    yield
    clear_memo()


def test_second_codegen_hits_the_disk_cache(tmp_path, cp):
    """A second (cold-memo) generation must be a cache hit, not a
    re-walk of the design — this is what makes sweep workers cheap."""
    cache = SynthesisCache(tmp_path / "c")
    first = sched_exec_source(cp.schedule, cache=cache)
    assert cache.stats.misses == 1 and cache.stats.stores == 1
    clear_memo()  # simulate a fresh process sharing the cache dir
    second = sched_exec_source(cp.schedule, cache=cache)
    assert second == first
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1  # no second generation


def test_memo_hit_never_touches_the_disk_cache(tmp_path, cp):
    cache = SynthesisCache(tmp_path / "c")
    rtl_sim_source(cp.rtl, ("input",), ("output",), cache=cache)
    before = cache.stats.as_dict()
    rtl_sim_source(cp.rtl, ("input",), ("output",), cache=cache)
    assert cache.stats.as_dict() == before  # memo answered


def test_rtl_and_sched_keys_do_not_collide(tmp_path, cp):
    cache = SynthesisCache(tmp_path / "c")
    a = sched_exec_source(cp.schedule, cache=cache)
    b = rtl_sim_source(cp.rtl, ("input",), ("output",), cache=cache)
    assert a != b
    assert cache.stats.stores == 2


def test_different_designs_generate_different_source(tmp_path):
    cache = SynthesisCache(tmp_path / "c")
    a = sched_exec_source(compile_one(SRC).schedule, cache=cache)
    b = sched_exec_source(
        compile_one(SRC.replace("x * 3 + 1", "x * 5 + 2")).schedule,
        cache=cache)
    assert a != b
    assert cache.stats.stores == 2


def test_cached_construction_still_executes_correctly(tmp_path, cp):
    """End to end through the cache: a compiled executor built from a
    disk-cached source behaves like a freshly generated one."""
    cache = SynthesisCache(tmp_path / "c")

    def run():
        cin = Channel("i", depth=64)
        cout = Channel("o", unbounded=True)
        for v in (1, 2, 3):
            cin.push(v)
        cin.close()
        pe = CompiledProcessExec(cp.schedule,
                                 {"input": cin, "output": cout},
                                 cache=cache)
        while not pe.done and pe.cycles < 10_000:
            pe.tick()
        return list(cout.queue)

    first = run()
    clear_memo()
    assert run() == first == [4, 7, 10]
    assert cache.stats.hits >= 1


def test_memo_stats_rise_across_repeated_jobs(tmp_path, cp):
    """Warm-process observability (serve daemon): repeated identical jobs
    in one process raise the memo hit counters while misses stay flat."""
    from repro.simc import memo_stats

    cache = SynthesisCache(tmp_path / "c")
    sched_exec_source(cp.schedule, cache=cache)
    assert memo_stats.source_misses == 1
    assert memo_stats.source_hits == 0
    for expect_hits in (1, 2, 3):
        sched_exec_source(cp.schedule, cache=cache)
        assert memo_stats.source_hits == expect_hits
    assert memo_stats.source_misses == 1  # never regenerated


def test_code_memo_counters_track_compiles(tmp_path, cp):
    from repro.simc import memo_stats
    from repro.simc.codecache import compile_source

    src = sched_exec_source(cp.schedule,
                            cache=SynthesisCache(tmp_path / "c"))
    compile_source(src, "<gen>")
    assert memo_stats.code_misses == 1 and memo_stats.code_hits == 0
    compile_source(src, "<gen>")
    compile_source(src, "<gen>")
    assert memo_stats.code_misses == 1 and memo_stats.code_hits == 2


def test_clear_memo_resets_stats(tmp_path, cp):
    from repro.simc import memo_stats

    sched_exec_source(cp.schedule, cache=SynthesisCache(tmp_path / "c"))
    assert memo_stats.as_dict() != {
        "source_hits": 0, "source_misses": 0,
        "code_hits": 0, "code_misses": 0}
    clear_memo()
    assert memo_stats.as_dict() == {
        "source_hits": 0, "source_misses": 0,
        "code_hits": 0, "code_misses": 0}


def test_scalar_and_batched_sched_keys_do_not_alias(tmp_path, cp):
    """Scalar and batched (SoA) source are keyed by the *same* schedule
    digest; only the kind namespace separates them. A collision would
    hand a scalar executor N-lane source (or vice versa) — in the serve
    daemon, across every thread sharing the memo."""
    from repro.simc import batched_sched_source

    cache = SynthesisCache(tmp_path / "c")
    scalar = sched_exec_source(cp.schedule, cache=cache)
    batched = batched_sched_source(cp.schedule, cache=cache)
    assert scalar != batched
    assert cache.stats.stores == 2  # two distinct disk keys
    clear_memo()  # fresh process, same disk cache: still no aliasing
    assert sched_exec_source(cp.schedule, cache=cache) == scalar
    assert batched_sched_source(cp.schedule, cache=cache) == batched


def test_scalar_and_batched_rtl_keys_do_not_alias(tmp_path, cp):
    from repro.simc import batched_rtl_source

    cache = SynthesisCache(tmp_path / "c")
    scalar = rtl_sim_source(cp.rtl, ("input",), ("output",), cache=cache)
    batched = batched_rtl_source(cp.rtl, ("input",), ("output",),
                                 cache=cache)
    assert scalar != batched
    assert cache.stats.stores == 2
    clear_memo()
    assert rtl_sim_source(cp.rtl, ("input",), ("output",),
                          cache=cache) == scalar
    assert batched_rtl_source(cp.rtl, ("input",), ("output",),
                              cache=cache) == batched


def test_memo_keys_embed_the_backend_kind(tmp_path, cp):
    """The memo key string carries the kind (``simc-sched-…`` vs
    ``simc-sched-batch-…``) *in addition to* the kind's slot in the
    fingerprint — aliasing would need both to collide at once."""
    from repro.simc import batched_sched_source
    from repro.simc.codecache import _SOURCE_MEMO

    cache = SynthesisCache(tmp_path / "c")
    sched_exec_source(cp.schedule, cache=cache)
    batched_sched_source(cp.schedule, cache=cache)
    kinds = sorted(k.rsplit("-", 1)[0] for k in _SOURCE_MEMO)
    assert kinds == ["simc-sched", "simc-sched-batch"]


def test_memo_safe_under_concurrent_mixed_backend_codegen(tmp_path, cp):
    """Serve-daemon shape: many threads generating scalar *and* batched
    source for the same design through one shared memo. Every thread
    must get the bytes its backend asked for — never the sibling
    backend's — and the memo must settle to one entry per kind."""
    import threading

    from repro.simc import batched_rtl_source, batched_sched_source
    from repro.simc.codecache import _SOURCE_MEMO

    cache = SynthesisCache(tmp_path / "c")
    refs = {
        "sched": sched_exec_source(cp.schedule, cache=cache),
        "sched-batch": batched_sched_source(cp.schedule, cache=cache),
        "rtl": rtl_sim_source(cp.rtl, ("input",), ("output",),
                              cache=cache),
        "rtl-batch": batched_rtl_source(cp.rtl, ("input",), ("output",),
                                        cache=cache),
    }
    clear_memo()  # hammer from a cold memo so threads race the misses
    errors: list[str] = []
    start = threading.Barrier(16)

    def hammer(tid: int) -> None:
        start.wait()
        for _ in range(20):
            got = {
                "sched": sched_exec_source(cp.schedule, cache=cache),
                "sched-batch": batched_sched_source(cp.schedule,
                                                    cache=cache),
                "rtl": rtl_sim_source(cp.rtl, ("input",), ("output",),
                                      cache=cache),
                "rtl-batch": batched_rtl_source(
                    cp.rtl, ("input",), ("output",), cache=cache),
            }
            for kind, src in got.items():
                if src != refs[kind]:
                    errors.append(f"t{tid}: {kind} got foreign source")

    threads = [threading.Thread(target=hammer, args=(t,))
               for t in range(16)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors[:3]
    assert len(_SOURCE_MEMO) == 4  # one entry per kind, no dupes


def test_memo_reuse_is_bit_identical_across_jobs(tmp_path, cp):
    """The warm path must return the exact bytes the cold path generated
    — a memo hit is an optimization, never a different artifact."""
    cache = SynthesisCache(tmp_path / "c")
    cold = sched_exec_source(cp.schedule, cache=cache)
    warm = sched_exec_source(cp.schedule, cache=cache)
    assert warm == cold
    clear_memo()  # fresh process, same disk cache
    disk = sched_exec_source(cp.schedule, cache=cache)
    assert disk == cold
