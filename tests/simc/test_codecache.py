"""Content-addressed codegen caching (memo + lab-cache tiers)."""

import pytest

from repro.hls.cyclemodel import Channel
from repro.lab.cache import SynthesisCache
from repro.simc import (
    CompiledProcessExec,
    clear_memo,
    rtl_sim_source,
    sched_exec_source,
)
from tests.helpers import compile_one

SRC = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    co_stream_write(output, x * 3 + 1);
  }
  co_stream_close(output);
}
"""


@pytest.fixture
def cp():
    return compile_one(SRC)


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_memo()
    yield
    clear_memo()


def test_second_codegen_hits_the_disk_cache(tmp_path, cp):
    """A second (cold-memo) generation must be a cache hit, not a
    re-walk of the design — this is what makes sweep workers cheap."""
    cache = SynthesisCache(tmp_path / "c")
    first = sched_exec_source(cp.schedule, cache=cache)
    assert cache.stats.misses == 1 and cache.stats.stores == 1
    clear_memo()  # simulate a fresh process sharing the cache dir
    second = sched_exec_source(cp.schedule, cache=cache)
    assert second == first
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1  # no second generation


def test_memo_hit_never_touches_the_disk_cache(tmp_path, cp):
    cache = SynthesisCache(tmp_path / "c")
    rtl_sim_source(cp.rtl, ("input",), ("output",), cache=cache)
    before = cache.stats.as_dict()
    rtl_sim_source(cp.rtl, ("input",), ("output",), cache=cache)
    assert cache.stats.as_dict() == before  # memo answered


def test_rtl_and_sched_keys_do_not_collide(tmp_path, cp):
    cache = SynthesisCache(tmp_path / "c")
    a = sched_exec_source(cp.schedule, cache=cache)
    b = rtl_sim_source(cp.rtl, ("input",), ("output",), cache=cache)
    assert a != b
    assert cache.stats.stores == 2


def test_different_designs_generate_different_source(tmp_path):
    cache = SynthesisCache(tmp_path / "c")
    a = sched_exec_source(compile_one(SRC).schedule, cache=cache)
    b = sched_exec_source(
        compile_one(SRC.replace("x * 3 + 1", "x * 5 + 2")).schedule,
        cache=cache)
    assert a != b
    assert cache.stats.stores == 2


def test_cached_construction_still_executes_correctly(tmp_path, cp):
    """End to end through the cache: a compiled executor built from a
    disk-cached source behaves like a freshly generated one."""
    cache = SynthesisCache(tmp_path / "c")

    def run():
        cin = Channel("i", depth=64)
        cout = Channel("o", unbounded=True)
        for v in (1, 2, 3):
            cin.push(v)
        cin.close()
        pe = CompiledProcessExec(cp.schedule,
                                 {"input": cin, "output": cout},
                                 cache=cache)
        while not pe.done and pe.cycles < 10_000:
            pe.tick()
        return list(cout.queue)

    first = run()
    clear_memo()
    assert run() == first == [4, 7, 10]
    assert cache.stats.hits >= 1


def test_memo_stats_rise_across_repeated_jobs(tmp_path, cp):
    """Warm-process observability (serve daemon): repeated identical jobs
    in one process raise the memo hit counters while misses stay flat."""
    from repro.simc import memo_stats

    cache = SynthesisCache(tmp_path / "c")
    sched_exec_source(cp.schedule, cache=cache)
    assert memo_stats.source_misses == 1
    assert memo_stats.source_hits == 0
    for expect_hits in (1, 2, 3):
        sched_exec_source(cp.schedule, cache=cache)
        assert memo_stats.source_hits == expect_hits
    assert memo_stats.source_misses == 1  # never regenerated


def test_code_memo_counters_track_compiles(tmp_path, cp):
    from repro.simc import memo_stats
    from repro.simc.codecache import compile_source

    src = sched_exec_source(cp.schedule,
                            cache=SynthesisCache(tmp_path / "c"))
    compile_source(src, "<gen>")
    assert memo_stats.code_misses == 1 and memo_stats.code_hits == 0
    compile_source(src, "<gen>")
    compile_source(src, "<gen>")
    assert memo_stats.code_misses == 1 and memo_stats.code_hits == 2


def test_clear_memo_resets_stats(tmp_path, cp):
    from repro.simc import memo_stats

    sched_exec_source(cp.schedule, cache=SynthesisCache(tmp_path / "c"))
    assert memo_stats.as_dict() != {
        "source_hits": 0, "source_misses": 0,
        "code_hits": 0, "code_misses": 0}
    clear_memo()
    assert memo_stats.as_dict() == {
        "source_hits": 0, "source_misses": 0,
        "code_hits": 0, "code_misses": 0}


def test_memo_reuse_is_bit_identical_across_jobs(tmp_path, cp):
    """The warm path must return the exact bytes the cold path generated
    — a memo hit is an optimization, never a different artifact."""
    cache = SynthesisCache(tmp_path / "c")
    cold = sched_exec_source(cp.schedule, cache=cache)
    warm = sched_exec_source(cp.schedule, cache=cache)
    assert warm == cold
    clear_memo()  # fresh process, same disk cache
    disk = sched_exec_source(cp.schedule, cache=cache)
    assert disk == cold
