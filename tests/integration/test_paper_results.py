"""Integration tests pinning the paper's headline results.

These are the claims the reproduction stands on; each test regenerates a
result from scratch through the full toolchain (parse -> lower ->
assertion synthesis -> schedule -> execute/estimate).
"""

from repro.apps.loopback import build_loopback
from repro.core.synth import synthesize
from repro.platform.device import EP2S180
from repro.platform.resources import estimate_image
from repro.platform.timing import estimate_fmax
from repro.runtime.hwexec import execute
from repro.runtime.taskgraph import Application

PIPE_SCALAR = """
void p(co_stream input, co_stream output) {
  uint32 x;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    assert(x < 60000);
    co_stream_write(output, x + 1);
  }
  co_stream_close(output);
}
"""


def one_process_app(src, data):
    app = Application("t")
    app.add_c_process(src, name="p", filename="p.c")
    app.feed("in", "p.input", data=list(data))
    app.sink("out", "p.output")
    return app


def test_table4_scalar_row():
    app = one_process_app(PIPE_SCALAR, [1])
    reports = {
        level: next(iter(
            synthesize(app, assertions=level).compiled["p"]
            .pipeline_report().values()
        ))
        for level in ("none", "unoptimized", "optimized")
    }
    base, unopt, opt = reports["none"], reports["unoptimized"], reports["optimized"]
    assert base == (2, 1)          # paper baseline: latency 2, rate 1
    assert unopt == (3, 2)         # +1 latency, rate 1 -> 2 (2x slowdown)
    assert opt == (2, 1)           # optimization removes all overhead


def test_throughput_2x_claim():
    """'resulting in a 2x speedup compared to the unoptimized assertions'"""
    n = 128
    app = one_process_app(PIPE_SCALAR, range(1, n + 1))
    cycles = {}
    for level in ("unoptimized", "optimized"):
        res = execute(synthesize(app, assertions=level), max_cycles=100_000)
        assert res.completed
        cycles[level] = res.cycles
    speedup = cycles["unoptimized"] / cycles["optimized"]
    assert 1.7 < speedup < 2.2


def test_fig4_headline_numbers():
    app = build_loopback(128)
    fmax = {
        level: estimate_fmax(synthesize(app, assertions=level)).fmax_mhz
        for level in ("none", "unoptimized", "optimized")
    }
    # paper: 190.6 / 154 / 189.3
    assert abs(fmax["none"] - 190.6) / 190.6 < 0.10
    assert abs(fmax["unoptimized"] - 154.0) / 154.0 < 0.10
    assert abs(fmax["optimized"] - 189.3) / 189.3 < 0.10


def test_fig5_3x_reduction():
    app = build_loopback(128)
    aluts = {
        level: estimate_image(synthesize(app, assertions=level)).total.comb_aluts
        for level in ("none", "unoptimized", "optimized")
    }
    unopt = aluts["unoptimized"] - aluts["none"]
    opt = aluts["optimized"] - aluts["none"]
    assert unopt / opt > 3.0
    assert 100.0 * unopt / EP2S180.aluts < 9.0


def test_assertion_messages_identical_across_all_paths():
    """The same assert must print the same ANSI-C message everywhere."""
    from repro.runtime.swsim import software_sim

    app = one_process_app(PIPE_SCALAR, [1, 2, 99999])
    expected = ("Assertion failed: x < 60000, file p.c, line 6, "
                "function p")
    sw = software_sim(app)
    assert sw.stderr == [expected]
    for level in ("unoptimized", "optimized"):
        hw = execute(synthesize(app, assertions=level))
        assert hw.stderr == [expected], level


def test_ndebug_and_optimized_equal_performance():
    """Abstract claim: optimized assertions leave throughput untouched."""
    n = 96
    app = one_process_app(PIPE_SCALAR, range(1, n + 1))
    base = execute(synthesize(app, assertions="none"), max_cycles=100_000)
    opt = execute(synthesize(app, assertions="optimized"), max_cycles=100_000)
    assert base.completed and opt.completed
    assert abs(opt.cycles - base.cycles) <= 2
