"""End-to-end integration: the case-study applications through every path."""

from repro.apps.des_tables import unpack_text
from repro.apps.edge_detect import build_edge_app, golden_edge
from repro.apps.tripledes import build_tdes_app, expected_blocks
from repro.core.synth import SynthesisOptions, synthesize
from repro.runtime.hwexec import execute
from repro.runtime.swsim import software_sim


def test_tripledes_full_stack():
    text = b"End to end."
    app = build_tdes_app(text)
    sw = software_sim(app)
    assert unpack_text(sw.outputs["plain"]) == text
    for level in ("none", "optimized"):
        hw = execute(synthesize(app, assertions=level), max_cycles=5_000_000)
        assert hw.completed, level
        assert hw.outputs["plain"] == expected_blocks(text), level


def test_tripledes_verilog_emits_for_all_processes():
    app = build_tdes_app(b"v")
    img = synthesize(app, assertions="optimized")
    from repro.rtl.verilog import emit_image

    verilog = emit_image(img)
    assert "tdes_decrypt" in verilog
    assert all(v.startswith("module ") for v in verilog.values())
    # the S-box ROM appears in the emitted text
    assert "sboxes" in verilog["tdes_decrypt"]


def test_edge_detect_full_stack():
    w, h = 24, 10
    px = [((x * 3 + y * 5) % 997) for y in range(h) for x in range(w)]
    app = build_edge_app(w, h, px)
    golden = golden_edge(w, h, px)
    assert software_sim(app).outputs["edges_out"] == golden
    hw = execute(synthesize(app, assertions="optimized"), max_cycles=500_000)
    assert hw.completed
    assert hw.outputs["edges_out"] == golden


def test_edge_detect_ablation_options_work():
    w, h = 16, 8
    px = [1] * (w * h)
    app = build_edge_app(w, h, px)
    for opts in (
        SynthesisOptions(share=False),
        SynthesisOptions(replicate=False),
        SynthesisOptions(parallelize=False),
    ):
        hw = execute(synthesize(app, assertions="optimized", options=opts),
                     max_cycles=500_000)
        assert hw.completed
        assert hw.outputs["edges_out"] == golden_edge(w, h, px)


def test_mixed_pass_fail_ordering():
    # the first failing assertion is the one reported (abort semantics)
    text = b"ordering!"
    app = build_tdes_app(text)
    app.streams["cipher"].feeder_data[-1] ^= 1  # corrupt the LAST block
    hw = execute(synthesize(app, assertions="optimized"), max_cycles=5_000_000)
    assert hw.aborted
    # earlier blocks decrypted fine before the abort
    assert len(hw.outputs.get("plain", [])) >= 0
    assert hw.failures
