"""Smoke tests: every example script runs cleanly and prints its story."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


@pytest.mark.parametrize("name,needle", [
    ("quickstart.py", "Assertion failed: x < 1000"),
    ("debug_divergence.py", "addr < 32"),
    ("hang_tracing.py", "traces missing in hardware"),
    ("tripledes_verification.py", "Attack at dawn."),
    ("scaling_study.py", "identity preserved=True"),
    ("timing_assertions.py", "Latency assertion failed"),
])
def test_example_runs(name, needle):
    out = run_example(name)
    assert needle in out
