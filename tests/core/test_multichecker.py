"""Unit tests for the round-robin multi-assertion checker (future work)."""

import pytest

from repro.core.multichecker import build_multichecker, partition_plans
from repro.core.parallelize import parallelize_function
from repro.core.synth import SynthesisOptions, synthesize
from repro.hls.compiler import compile_process
from repro.ir.transform import eliminate_dead_code
from repro.ir.verify import verify_function
from repro.runtime.hwexec import execute
from repro.runtime.taskgraph import Application
from tests.helpers import lower_one


def plans_for(src, name="f", share=True):
    func = lower_one(src)
    res = parallelize_function(func, name, lambda s: s.ordinal + 1, share=share)
    eliminate_dead_code(func)
    return res.checkers


MULTI_SRC = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x < 1000);
    assert(x != 13);
    assert(x * 2 < 1500);
    co_stream_write(output, x);
  }
}
"""


def test_build_merges_plans_into_one_process():
    plans = plans_for(MULTI_SRC)
    mc = build_multichecker("mchk", plans)
    verify_function(mc.checker)
    assert len(mc.members) == 3
    assert mc.arbiter.total_slots == 3  # one 32-bit slot per assertion
    assert mc.arbiter.offsets == [0, 1, 2]


def test_merged_checker_pipelines_at_ii1():
    plans = plans_for(MULTI_SRC)
    mc = build_multichecker("mchk", plans)
    cp = compile_process(mc.checker)
    ps = next(iter(cp.schedule.pipelines.values()))
    assert ps.ii == 1  # "start a new assertion every cycle"


def test_division_conditions_stay_individual():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x < 100);
    assert(1000 / (x + 1) > 0);
    co_stream_write(output, x);
  }
}
"""
    plans = plans_for(src)
    mergeable, individual = partition_plans(plans)
    assert len(mergeable) == 1
    assert len(individual) == 1


def test_stream_mode_plans_not_mergeable():
    plans = plans_for(MULTI_SRC, share=False)
    mergeable, individual = partition_plans(plans)
    assert not mergeable and len(individual) == 3


def test_unmergeable_plan_rejected():
    plans = plans_for(MULTI_SRC, share=False)
    with pytest.raises(ValueError):
        build_multichecker("mchk", plans)


def make_app(data):
    app = Application("t")
    app.add_c_process(MULTI_SRC, name="f", filename="m.c")
    app.feed("in", "f.input", data=data)
    app.sink("out", "f.output")
    return app


def test_end_to_end_pass():
    img = synthesize(make_app([1, 2, 3]), assertions="optimized",
                     options=SynthesisOptions(multichecker=True))
    assert "__mchk0" in img.compiled
    assert not any("__chk" in n for n in img.compiled)
    hw = execute(img)
    assert hw.completed and hw.outputs["out"] == [1, 2, 3]


def test_end_to_end_each_assertion_attributed():
    for bad, expr in ((5000, "x < 1000"), (13, "x != 13"), (900, "(x * 2) < 1500")):
        img = synthesize(make_app([1, bad]), assertions="optimized",
                         options=SynthesisOptions(multichecker=True))
        hw = execute(img)
        assert hw.aborted, bad
        assert expr in hw.stderr[0], (bad, hw.stderr)


def test_nabort_collects_across_merged_assertions():
    img = synthesize(make_app([5000, 13, 1]), assertions="optimized",
                     options=SynthesisOptions(multichecker=True), nabort=True)
    hw = execute(img)
    assert hw.completed
    exprs = {site.expr_text for _p, site in hw.failures}
    assert exprs == {"x < 1000", "x != 13", "(x * 2) < 1500"}


def test_group_size_splits_checkers():
    from repro.apps.loopback import build_loopback

    app = build_loopback(8, data=[1])
    img = synthesize(app, assertions="optimized",
                     options=SynthesisOptions(multichecker=True,
                                              multichecker_group=4))
    multis = [n for n in img.compiled if n.startswith("__mchk")]
    assert len(multis) == 2


def test_singleton_group_keeps_individual_checker():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x < 100);
    co_stream_write(output, x);
  }
}
"""
    app = Application("t")
    app.add_c_process(src, name="f", filename="s.c")
    app.feed("in", "f.input", data=[1])
    app.sink("out", "f.output")
    img = synthesize(app, assertions="optimized",
                     options=SynthesisOptions(multichecker=True))
    assert "f__chk0" in img.compiled
    assert not any(n.startswith("__mchk") for n in img.compiled)
