"""Unit tests for assertion parallelization (Section 3.1)."""

from repro.core.parallelize import CHECK_FAIL_PARAM, parallelize_function
from repro.hls.compiler import compile_process
from repro.ir.ops import OpKind
from repro.ir.transform import eliminate_dead_code
from repro.ir.verify import verify_function
from tests.helpers import lower_one, run_cycle_model

SRC = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x * 2 < 100);
    co_stream_write(output, x);
  }
  co_stream_close(output);
}
"""


def parallelized(src, share=False, name="f"):
    func = lower_one(src)
    res = parallelize_function(func, name, lambda site: 42, share=share)
    eliminate_dead_code(func)
    verify_function(func)
    for plan in res.checkers:
        verify_function(plan.checker)
    return func, res


def test_assert_replaced_by_tap():
    func, res = parallelized(SRC)
    assert func.count_ops(OpKind.ASSERT_CHECK) == 0
    assert func.count_ops(OpKind.TAP) == 1
    assert res.taps_added == 1


def test_inline_condition_logic_removed_from_app():
    func, _ = parallelized(SRC)
    # the x*2 and the compare moved into the checker; only the tap remains
    assert func.count_ops(OpKind.MUL) == 0
    assert func.count_ops(*[OpKind.LT]) == 0


def test_checker_recomputes_condition():
    _, res = parallelized(SRC)
    chk = res.checkers[0].checker
    assert chk.count_ops(OpKind.MUL) == 1
    assert chk.count_ops(OpKind.LT) == 1
    assert chk.count_ops(OpKind.TAP_READ) == 1


def test_checker_is_pipelined():
    _, res = parallelized(SRC)
    chk = res.checkers[0].checker
    assert any(b.pipeline for b in chk.blocks.values())
    compile_process(chk)  # schedulable


def test_stream_mode_checker_has_fail_stream():
    _, res = parallelized(SRC, share=False)
    chk = res.checkers[0].checker
    assert CHECK_FAIL_PARAM in chk.stream_names()
    assert res.checkers[0].fail_mode == "stream"


def test_share_mode_checker_uses_fail_tap():
    _, res = parallelized(SRC, share=True)
    plan = res.checkers[0]
    assert plan.fail_mode == "bit"
    assert plan.fail_tap is not None
    assert CHECK_FAIL_PARAM not in plan.checker.stream_names()
    assert plan.checker.count_ops(OpKind.TAP) == 1


def test_share_mode_checker_pipelines_at_ii1():
    # Section 3.3: with the failure send moved off-stream, the checker can
    # accept a new assertion every cycle
    _, res = parallelized(SRC, share=True)
    cp = compile_process(res.checkers[0].checker)
    ps = next(iter(cp.schedule.pipelines.values()))
    assert ps.ii == 1


def test_stream_mode_checker_ii2():
    _, res = parallelized(SRC, share=False)
    cp = compile_process(res.checkers[0].checker)
    ps = next(iter(cp.schedule.pipelines.values()))
    assert ps.ii == 2


def test_checker_detects_failure_via_interp():
    _, res = parallelized(SRC, share=False)
    chk = res.checkers[0].checker
    from repro.ir.interp import Interp

    interp = Interp(chk)
    gen = interp.run()
    event = next(gen)
    assert event == ("tap_read", "f__tap0")
    event = gen.send((1, 3))  # 3*2 < 100: passes
    assert event[0] == "tap_read"
    event = gen.send((1, 70))  # 140 >= 100: fails
    assert event[0] == "write" and event[2] == 42


def test_assert_zero_taps_constant_trigger():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(0);
    co_stream_write(output, x);
  }
}
"""
    func, res = parallelized(src)
    taps = [i for i in func.instructions() if i.op == OpKind.TAP]
    assert len(taps) == 1
    chk = res.checkers[0].checker
    verify_function(chk)


def test_array_operand_keeps_extract_load():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  uint32 buf[8];
  while (co_stream_read(input, &x)) {
    buf[x & 7] = x;
    assert(buf[x & 7] < 100);
    co_stream_write(output, x);
  }
}
"""
    func, res = parallelized(src)
    # the extract load survives in the app; the checker gets the value
    taps = [i for i in func.instructions() if i.op == OpKind.TAP]
    assert len(taps) == 1
    loads = [i for i in func.instructions() if i.op == OpKind.LOAD]
    assert len(loads) >= 1


def test_app_semantics_preserved_after_parallelization():
    func, _ = parallelized(SRC)
    cp = compile_process(func)
    _, outs = run_cycle_model(cp, {"input": [1, 2, 3]})
    assert outs["output"] == [1, 2, 3]


def test_multiple_assertions_get_distinct_channels():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x < 100);
    assert(x != 13);
    co_stream_write(output, x);
  }
}
"""
    func, res = parallelized(src)
    channels = {plan.tap_channel for plan in res.checkers}
    assert len(channels) == 2
