"""Unit tests for the command-line interface."""

import os

import pytest

from repro.cli import main

SRC = """
void filt(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x < 100);
    co_stream_write(output, x + 1);
  }
  co_stream_close(output);
}
"""


@pytest.fixture
def cfile(tmp_path):
    path = tmp_path / "filt.c"
    path.write_text(SRC)
    return str(path)


def test_compile_writes_verilog_and_report(cfile, tmp_path, capsys):
    outdir = str(tmp_path / "build")
    assert main(["compile", cfile, "-o", outdir]) == 0
    files = sorted(os.listdir(outdir))
    assert "filt.v" in files
    assert "filt__chk0.v" in files
    assert "report.txt" in files
    report = (tmp_path / "build" / "report.txt").read_text()
    assert "Fmax" in report and "comb ALUTs" in report
    verilog = (tmp_path / "build" / "filt.v").read_text()
    assert verilog.startswith("module filt")


def test_compile_level_none_has_single_module(cfile, tmp_path):
    outdir = str(tmp_path / "b2")
    assert main(["compile", cfile, "-o", outdir, "--assertions", "none"]) == 0
    assert sorted(os.listdir(outdir)) == ["filt.v", "report.txt"]


def test_report_prints_table(cfile, capsys):
    assert main(["report", cfile]) == 0
    out = capsys.readouterr().out
    assert "Original" in out and "Assert" in out and "Overhead" in out
    assert "Frequency (MHz)" in out


def test_simulate_runs_both_models(cfile, capsys):
    assert main(["simulate", cfile, "--feed", "1,2,3"]) == 0
    out = capsys.readouterr().out
    assert "software simulation: completed=True" in out
    assert "hardware execution:  completed=True" in out
    assert "[2, 3, 4]" in out
    assert "outputs match: True" in out


def test_simulate_reports_assertion_failure(cfile, capsys):
    assert main(["simulate", cfile, "--feed", "1,999"]) == 0
    out = capsys.readouterr().out
    assert "Assertion failed: x < 100" in out


def test_ablation_flags_accepted(cfile, capsys):
    assert main(["report", cfile, "--no-share", "--no-replicate"]) == 0
    assert main(["report", cfile, "--multichecker"]) == 0
