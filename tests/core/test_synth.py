"""Unit tests for the synthesis orchestrator and assertion registry."""

import pytest

from repro.core.registry import AssertionRegistry
from repro.core.synth import SynthesisOptions, synthesize
from repro.errors import AssertionSynthesisError
from repro.ir.instr import AssertionSite
from repro.runtime.taskgraph import Application

SRC = """
void filt(co_stream input, co_stream output) {
  uint32 x;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    assert(x < 1000);
    co_stream_write(output, x + 1);
  }
  co_stream_close(output);
}
"""


def make_app(data=(1, 2, 3)):
    app = Application("t")
    app.add_c_process(SRC, name="filt", filename="filt.c")
    app.feed("in", "filt.input", data=list(data))
    app.sink("out", "filt.output")
    return app


def test_registry_assigns_unique_codes_from_one():
    reg = AssertionRegistry()
    s1 = AssertionSite(0, "a.c", 1, "f", "x")
    s2 = AssertionSite(1, "a.c", 2, "f", "y")
    c1 = reg.register("p", s1)
    c2 = reg.register("p", s2)
    assert c1 == 1 and c2 == 2
    assert reg.register("p", s1) == c1  # idempotent
    assert reg.lookup(c2) == ("p", s2)
    assert "y" in reg.message(c2)
    assert "unknown" in reg.message(999)


def test_level_none_strips_everything():
    img = synthesize(make_app(), assertions="none")
    assert img.assertion_level == "none"
    assert not img.assert_decode
    assert list(img.compiled) == ["filt"]


def test_level_unoptimized_adds_fail_stream():
    img = synthesize(make_app(), assertions="unoptimized")
    assert "filt__afail" in img.app.streams
    assert img.assert_decode["filt__afail"].mode == "code"


def test_level_optimized_adds_checker_and_collector():
    img = synthesize(make_app(), assertions="optimized")
    assert "filt__chk0" in img.compiled
    assert any(p.kind == "collector" for p in img.app.processes.values())
    assert any(d.mode == "bitmask" for d in img.assert_decode.values())


def test_optimized_without_share_uses_code_streams():
    img = synthesize(make_app(), assertions="optimized",
                     options=SynthesisOptions(share=False))
    assert not any(p.kind == "collector" for p in img.app.processes.values())
    assert all(d.mode == "code" for d in img.assert_decode.values())


def test_optimized_without_parallelize_degenerates_to_unoptimized():
    img = synthesize(make_app(), assertions="optimized",
                     options=SynthesisOptions(parallelize=False))
    assert img.assertion_level == "unoptimized"


def test_invalid_level_rejected():
    with pytest.raises(AssertionSynthesisError):
        synthesize(make_app(), assertions="bogus")


def test_source_app_not_mutated():
    app = make_app()
    before = {n: p.func.count_ops for n, p in app.processes.items()}
    synthesize(app, assertions="optimized")
    assert list(app.processes) == ["filt"]
    assert len(app.processes["filt"].func.assertion_sites) == 1
    _ = before


def test_original_level_equals_ndebug_source():
    # synthesizing with assertions='none' must match compiling NDEBUG source
    img = synthesize(make_app(), assertions="none")
    app2 = Application("t2")
    app2.add_c_process(SRC, name="filt", filename="filt.c",
                       defines={"NDEBUG": ""})
    app2.feed("in", "filt.input", data=[1, 2, 3])
    app2.sink("out", "filt.output")
    img2 = synthesize(app2, assertions="none")
    p1 = img.compiled["filt"].pipeline_report()
    p2 = img2.compiled["filt"].pipeline_report()
    assert p1 == p2


def test_nabort_override():
    img = synthesize(make_app(), assertions="optimized", nabort=True)
    assert img.nabort


def test_registry_attached_to_image():
    img = synthesize(make_app(), assertions="optimized")
    assert len(img.registry) == 1
