"""Unit tests for unoptimized assertion instrumentation (Section 4.1)."""

import pytest

from repro.core.instrument import (
    FAIL_PARAM,
    find_assert_checks,
    instrument_unoptimized,
    strip_assertions,
)
from repro.errors import AssertionSynthesisError
from repro.hls.schedule import schedule_function
from repro.ir.ops import OpKind
from repro.ir.transform import eliminate_dead_code
from repro.ir.verify import verify_function
from tests.helpers import interp_outputs, lower_one

SRC = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x < 10);
    co_stream_write(output, x * 2);
  }
  co_stream_close(output);
}
"""


def test_find_assert_checks():
    func = lower_one(SRC)
    assert len(find_assert_checks(func)) == 1


def test_strip_assertions_removes_checks():
    func = lower_one(SRC)
    assert strip_assertions(func) == 1
    assert func.count_ops(OpKind.ASSERT_CHECK) == 0
    eliminate_dead_code(func)
    verify_function(func)


def test_instrument_adds_fail_stream_and_branch():
    func = lower_one(SRC)
    n = instrument_unoptimized(func, lambda site: 7)
    assert n == 1
    assert FAIL_PARAM in func.stream_names()
    assert func.count_ops(OpKind.ASSERT_CHECK) == 0
    verify_function(func)
    # the failure arm writes the error code on the fail stream
    writes = [
        i for i in func.instructions()
        if i.op == OpKind.STREAM_WRITE and i.attrs.get("stream") == FAIL_PARAM
    ]
    assert len(writes) == 1
    assert writes[0].args[0].value == 7


def test_instrumented_function_schedulable():
    func = lower_one(SRC)
    instrument_unoptimized(func, lambda site: 1)
    schedule_function(func)  # must not raise (no assert_check left)


def test_instrumented_behaviour_pass_path():
    func = lower_one(SRC)
    instrument_unoptimized(func, lambda site: 3)
    _, outs = interp_outputs(func, {"input": [1, 2]})
    assert outs["output"] == [2, 4]
    assert outs[FAIL_PARAM] == []


def test_instrumented_behaviour_failure_sends_code():
    func = lower_one(SRC)
    instrument_unoptimized(func, lambda site: 3)
    _, outs = interp_outputs(func, {"input": [1, 99, 2]})
    assert outs[FAIL_PARAM] == [3]
    # execution continues after the send (halting is the notifier's job)
    assert outs["output"] == [2, 198, 4]


def test_multiple_assertions_multiple_codes():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x < 100);
    assert(x != 13);
    co_stream_write(output, x);
  }
}
"""
    func = lower_one(src)
    codes = iter([11, 22])
    n = instrument_unoptimized(func, lambda site: next(codes))
    assert n == 2
    _, outs = interp_outputs(func, {"input": [13, 200]})
    assert outs[FAIL_PARAM] == [22, 11]


def test_double_instrumentation_rejected():
    func = lower_one(SRC)
    instrument_unoptimized(func, lambda site: 1)
    with pytest.raises(AssertionSynthesisError):
        instrument_unoptimized(func, lambda site: 1)


def test_assertion_in_straightline_code():
    src = """
void f(co_stream output) {
  uint32 a;
  a = 5;
  assert(a == 5);
  co_stream_write(output, a);
}
"""
    func = lower_one(src)
    instrument_unoptimized(func, lambda site: 1)
    verify_function(func)
    _, outs = interp_outputs(func)
    assert outs["output"] == [5]
