"""Unit tests for timing (latency) assertions — the future-work extension."""

import pytest

from repro.core.synth import synthesize
from repro.core.timing_assert import (
    extract_latency_regions,
    has_latency_markers,
    strip_latency_markers,
)
from repro.errors import AssertionSynthesisError
from repro.runtime.hwexec import execute
from repro.runtime.swsim import software_sim
from repro.runtime.taskgraph import Application
from tests.helpers import lower_one

SRC = """
void f(co_stream input, co_stream output) {
  uint32 x;
  uint32 i;
  uint32 acc;
  while (co_stream_read(input, &x)) {
    co_latency_start(1);
    acc = 0;
    for (i = 0; i < x; i++) { acc += i; }
    co_latency_end(1, 12);
    co_stream_write(output, acc);
  }
  co_stream_close(output);
}
"""


def make_app(data, src=SRC, **kw):
    app = Application("lat")
    app.add_c_process(src, name="f", filename="lat.c", **kw)
    app.feed("in", "f.input", data=data)
    app.sink("out", "f.output")
    return app


def test_markers_lowered_and_extracted():
    func = lower_one(SRC, filename="lat.c")
    assert has_latency_markers(func)
    spec = extract_latency_regions(func, "f")
    assert len(spec.regions) == 1
    region = spec.regions[0]
    assert region.bound == 12
    assert region.start_channel == "f__lat1_start"
    assert region.site.line == 10


def test_ndebug_compiles_markers_out():
    func = lower_one(SRC, defines={"NDEBUG": ""})
    assert not has_latency_markers(func)


def test_strip_markers():
    func = lower_one(SRC)
    assert strip_latency_markers(func) == 2
    assert not has_latency_markers(func)


def test_end_without_start_rejected():
    src = """
void f(co_stream output) {
  co_latency_end(3, 10);
}
"""
    func = lower_one(src)
    with pytest.raises(AssertionSynthesisError):
        extract_latency_regions(func, "f")


def test_start_without_end_rejected():
    src = """
void f(co_stream output) {
  co_latency_start(3);
}
"""
    func = lower_one(src)
    with pytest.raises(AssertionSynthesisError):
        extract_latency_regions(func, "f")


def test_within_bound_passes():
    hw = execute(synthesize(make_app([2, 3]), assertions="optimized"))
    assert hw.completed and not hw.failures
    assert hw.outputs["out"] == [1, 3]


def test_violation_reports_exact_cycles():
    hw = execute(synthesize(make_app([20]), assertions="optimized"))
    assert hw.aborted
    line = hw.stderr[0]
    assert line.startswith("Latency assertion failed: region 1 took ")
    assert "(bound 12)" in line and "file lat.c, line 10" in line
    # the measured loop runs 3 cycles/iteration: 20 iters + prologue
    cycles = int(line.split("took ")[1].split(" cycles")[0])
    assert 60 <= cycles <= 64


def test_violation_respects_nabort():
    hw = execute(synthesize(make_app([20, 2]), assertions="optimized",
                            nabort=True))
    assert hw.completed
    assert len(hw.failures) == 1
    assert hw.outputs["out"] == [190, 1]


def test_software_simulation_is_inert():
    sim = software_sim(make_app([20]))
    assert sim.completed and not sim.failures


def test_level_none_strips_monitor():
    img = synthesize(make_app([20]), assertions="none")
    assert not img.latency_regions
    hw = execute(img)
    assert hw.completed and not hw.failures


def test_measures_restart_per_iteration():
    # each loop iteration restarts the region; only slow ones violate
    hw = execute(synthesize(make_app([2, 20, 3]), assertions="optimized",
                            nabort=True))
    assert hw.completed
    assert len(hw.failures) == 1


def test_multiple_regions():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    co_latency_start(1);
    co_latency_end(1, 50);
    co_latency_start(2);
    x = x + 1;
    co_latency_end(2, 50);
    co_stream_write(output, x);
  }
  co_stream_close(output);
}
"""
    img = synthesize(make_app([1, 2], src=src), assertions="optimized")
    assert len(img.latency_regions) == 2
    hw = execute(img)
    assert hw.completed and not hw.failures
