"""Unit tests for resource replication (3.2) and channel sharing (3.3/4.2)."""

from repro.core.parallelize import parallelize_function
from repro.core.replicate import replicate_arrays
from repro.core.share import build_collectors
from repro.core.registry import AssertionRegistry
from repro.hls.compiler import compile_process
from repro.ir.transform import eliminate_dead_code
from repro.ir.verify import verify_function
from repro.runtime.taskgraph import Application
from tests.helpers import lower_one

PIPE_ARRAY_SRC = """
void f(co_stream input, co_stream output) {
  uint32 x; uint32 i; uint32 buf[16];
  i = 0;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    buf[i & 15] = x;
    assert(buf[i & 15] < 1000);
    co_stream_write(output, buf[(i + 8) & 15]);
    i = i + 1;
  }
  co_stream_close(output);
}
"""


def prepared(src):
    func = lower_one(src)
    res = parallelize_function(func, "f", lambda s: 1, share=True)
    eliminate_dead_code(func)
    return func, res


def test_replication_creates_shadow_array():
    func, _ = prepared(PIPE_ARRAY_SRC)
    rep = replicate_arrays(func)
    assert rep.shadows == {"buf": "buf__shadow"}
    assert "buf__shadow" in func.arrays
    assert rep.loads_retargeted == 1
    assert rep.stores_duplicated == 1
    verify_function(func)


def test_replication_restores_rate_at_one_extra_latency():
    # paper Table 4: optimized array assertion = +1 latency, +0 rate
    base_func = lower_one(PIPE_ARRAY_SRC, defines={"NDEBUG": ""})
    eliminate_dead_code(base_func)
    base = next(iter(compile_process(base_func).schedule.pipelines.values()))

    func, _ = prepared(PIPE_ARRAY_SRC)
    noreplicate = next(iter(compile_process(func.clone()).schedule.pipelines.values()))
    replicate_arrays(func)
    opt = next(iter(compile_process(func).schedule.pipelines.values()))

    assert opt.ii == base.ii                 # rate overhead 0
    assert opt.latency == base.latency + 1   # latency overhead 1
    # without replication the extract load costs rate instead
    assert noreplicate.ii == base.ii + 1


def test_replication_skips_sequential_code():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x; uint32 buf[8];
  while (co_stream_read(input, &x)) {
    buf[x & 7] = x;
    assert(buf[x & 7] < 100);
    co_stream_write(output, x);
  }
}
"""
    func, _ = prepared(src)
    rep = replicate_arrays(func)
    assert rep.shadows == {}


def test_replication_skips_untouched_arrays():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  const uint8 rom[4] = {1, 2, 3, 4};
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    assert(rom[x & 3] > 0);
    co_stream_write(output, x);
  }
}
"""
    func, _ = prepared(src)
    rep = replicate_arrays(func)
    # the ROM has no app accesses competing with the assertion
    assert rep.shadows == {}


def test_shadow_mirrors_initializer():
    func, _ = prepared(PIPE_ARRAY_SRC)
    replicate_arrays(func)
    assert func.arrays["buf__shadow"].size == func.arrays["buf"].size
    assert func.arrays["buf__shadow"].elem == func.arrays["buf"].elem


def _app_with_checkers(n_asserts: int):
    lines = "\n".join(f"    assert(x != {100 + i});" for i in range(n_asserts))
    src = f"""
void f(co_stream input, co_stream output) {{
  uint32 x;
  while (co_stream_read(input, &x)) {{
{lines}
    co_stream_write(output, x);
  }}
}}
"""
    app = Application("t")
    app.add_c_process(src, name="f", filename="t.c")
    app.feed("in", "f.input", data=[1])
    app.sink("out", "f.output")
    registry = AssertionRegistry()
    func = app.processes["f"].func
    res = parallelize_function(func, "f",
                               lambda s: registry.register("f", s), share=True)
    eliminate_dead_code(func)
    for plan in res.checkers:
        app.add_tap(plan.tap_channel, "f", plan.checker.name, plan.tap_widths)
        app.add_ir_process(plan.checker, daemon=True)
    return app, res.checkers, registry


def test_collectors_pack_32_assertions_per_stream():
    app, plans, registry = _app_with_checkers(40)
    share = build_collectors(app, plans, registry.lookup, word_width=32)
    assert len(share.collectors) == 2
    assert len(share.fail_streams) == 2
    first = share.fail_streams["__collect0_out"]
    assert first.mode == "bitmask"
    assert len(first.table) == 32
    second = share.fail_streams["__collect1_out"]
    assert len(second.table) == 8


def test_collector_decode_table_maps_bits_to_sites():
    app, plans, registry = _app_with_checkers(3)
    share = build_collectors(app, plans, registry.lookup)
    table = share.fail_streams["__collect0_out"].table
    assert {proc for proc, _ in table.values()} == {"f"}
    lines = [site.expr_text for _p, site in table.values()]
    assert "x != 100" in lines and "x != 102" in lines


def test_collector_streams_are_cpu_bound():
    app, plans, registry = _app_with_collectors_helper()
    for name in app.streams:
        if name.startswith("__collect"):
            assert app.streams[name].cpu_bound
            assert app.streams[name].role == "assert_bitmask"


def _app_with_collectors_helper():
    app, plans, registry = _app_with_checkers(2)
    build_collectors(app, plans, registry.lookup)
    return app, plans, registry
