"""The fabric router: deterministic shard assignment, failover
re-routing across surviving peers, merge byte-identity, and the
cross-node coalescing hints (lookup + remote follow)."""

import threading
import time

import pytest

from repro.errors import ServeError
from repro.faults.campaign import run_campaign
from repro.lab.retry import RetryPolicy
from repro.lab.shard import merge_runs
from repro.serve.client import ServeClient, SubmitReply
from repro.serve.fabric import FabricRouter
from repro.serve.jobs import JobSpec, job_fingerprint
from repro.serve.peers import PeerRegistry
from repro.serve.server import ReproServer, ServeConfig

ADDRS = ["10.0.0.1:7001", "10.0.0.2:7001", "10.0.0.3:7001"]

#: millisecond backoffs so re-route tests don't sleep for real
FAST_RETRY = RetryPolicy(max_attempts=8, base_delay=0.001,
                         max_delay=0.002, breaker=None)


def ok_reply(run_id=None):
    record = {"kind": "test"}
    if run_id:
        record["run_id"] = run_id
    return SubmitReply(events=[
        {"schema": 1, "event": "accepted", "job_id": "j1"},
        {"schema": 1, "event": "result", "status": "ok", "record": record},
    ])


def rejected_reply(code):
    return SubmitReply(events=[
        {"schema": 1, "event": "rejected", "code": code, "message": "no"},
    ])


def result_reply(status, transient=False, diagnostics=()):
    return SubmitReply(events=[
        {"schema": 1, "event": "accepted", "job_id": "j1"},
        {"schema": 1, "event": "result", "status": status,
         "transient": transient, "diagnostics": list(diagnostics)},
    ])


class ScriptedMesh:
    """A fabric of scripted daemons: each address pops outcomes off its
    script (an exception instance raises, a reply returns); when the
    script runs dry the peer answers ok. Every submit is recorded."""

    def __init__(self):
        self.scripts = {}
        self.submits = []  # (address, kind, params) in arrival order

    def script(self, address, *outcomes):
        self.scripts[address] = list(outcomes)

    def __call__(self, address):
        mesh = self

        class _Client:
            def submit(self, kind, params, timeout=None, relay=False):
                mesh.submits.append((address, kind, dict(params)))
                script = mesh.scripts.get(address)
                outcome = script.pop(0) if script else ok_reply()
                if isinstance(outcome, BaseException):
                    raise outcome
                return outcome

            def ping(self, timeout=None):
                return {"event": "pong"}

        return _Client()


def make_router(mesh, addrs=ADDRS, **kw):
    registry = PeerRegistry(addrs, client_factory=mesh)
    kw.setdefault("retry", FAST_RETRY)
    router = FabricRouter(registry, store_root="unused-store",
                          client_factory=mesh, **kw)
    return router, registry


# ---- happy path -------------------------------------------------------------


def test_shards_land_on_distinct_home_peers(tmp_path):
    mesh = ScriptedMesh()
    router, _ = make_router(mesh)
    result = router.run("sleep", {"seconds": 0})
    assert result.ok
    assert result.rerouted_shards == 0
    assert [s.shard for s in result.shards] == ["1/3", "2/3", "3/3"]
    # deterministic assignment: shard k -> k-th peer in sorted order
    by_shard = {p["shard"]: a for a, _, p in mesh.submits}
    assert by_shard == {"1/3": ADDRS[0], "2/3": ADDRS[1],
                        "3/3": ADDRS[2]}


def test_caller_params_are_not_mutated(tmp_path):
    mesh = ScriptedMesh()
    router, _ = make_router(mesh)
    params = {"seconds": 0}
    router.run("sleep", params)
    assert params == {"seconds": 0}  # shard key added to a copy only


def test_more_shards_than_peers_wraps_deterministically():
    mesh = ScriptedMesh()
    router, _ = make_router(mesh, addrs=ADDRS[:2])
    result = router.run("sleep", {"seconds": 0}, shards=4)
    assert result.ok and len(result.shards) == 4
    homes = [a for a, _, _ in mesh.submits]
    assert sorted(homes) == sorted([ADDRS[0], ADDRS[1]] * 2)
    by_shard = {p["shard"]: a for a, _, p in mesh.submits}
    assert by_shard["1/4"] == ADDRS[0] and by_shard["2/4"] == ADDRS[1]
    assert by_shard["3/4"] == ADDRS[0] and by_shard["4/4"] == ADDRS[1]


def test_no_routable_peers_is_an_error():
    mesh = ScriptedMesh()
    router, registry = make_router(mesh)
    for addr in ADDRS:
        for _ in range(3):
            registry.record_failure(addr, "dead")
    with pytest.raises(ServeError) as exc:
        router.run("sleep", {})
    assert exc.value.code == "RPR-V006"


# ---- failover re-routing ----------------------------------------------------


def test_dead_peer_shard_reroutes_to_next_survivor():
    mesh = ScriptedMesh()
    dead = ServeError("connection refused", code="RPR-V006")
    mesh.script(ADDRS[0], dead, dead, dead, dead)
    router, registry = make_router(mesh)
    result = router.run("sleep", {"seconds": 0})
    assert result.ok
    assert result.rerouted_shards == 1
    (moved,) = [s for s in result.shards if s.rerouted]
    assert moved.shard == "1/3"
    assert [h["peer"] for h in moved.attempts] == [ADDRS[0], ADDRS[1]]
    assert moved.attempts[0]["outcome"] == "error:RPR-V006"
    assert moved.attempts[1]["outcome"] == "ok"
    # one failed hop is evidence, not a verdict: the peer is suspect
    assert registry.state(ADDRS[0]).status == "suspect"


def test_truncated_stream_reroutes():
    mesh = ScriptedMesh()
    cut = ServeError("died mid-stream", code="RPR-V007")
    mesh.script(ADDRS[1], cut)
    router, _ = make_router(mesh)
    result = router.run("sleep", {"seconds": 0})
    assert result.ok
    (moved,) = [s for s in result.shards if s.rerouted]
    assert moved.shard == "2/3"
    assert [h["peer"] for h in moved.attempts] == [ADDRS[1], ADDRS[2]]


def test_draining_peer_rejection_reroutes():
    mesh = ScriptedMesh()
    mesh.script(ADDRS[0], rejected_reply("RPR-V004"))
    router, _ = make_router(mesh)
    result = router.run("sleep", {"seconds": 0})
    assert result.ok
    (moved,) = [s for s in result.shards if s.rerouted]
    assert moved.attempts[0]["outcome"] == "rejected:RPR-V004"
    assert moved.peer == ADDRS[1]


def test_timeout_outcome_reroutes():
    mesh = ScriptedMesh()
    mesh.script(ADDRS[2], result_reply("timeout", transient=True))
    router, _ = make_router(mesh)
    result = router.run("sleep", {"seconds": 0})
    assert result.ok
    (moved,) = [s for s in result.shards if s.rerouted]
    assert moved.attempts[0]["outcome"].startswith("timeout")
    assert moved.peer == ADDRS[0]  # 3/3's survivor wraps to the front


def test_permanent_failure_fails_fast_without_rerouting():
    mesh = ScriptedMesh()
    diag = {"code": "RPR-E001", "severity": "error", "message": "crash"}
    mesh.script(ADDRS[0], result_reply("failed", diagnostics=[diag]))
    router, _ = make_router(mesh)
    result = router.run("sleep", {"seconds": 0}, shards=1)
    assert not result.ok
    (shard,) = result.shards
    assert shard.status == "failed"
    assert len(shard.attempts) == 1  # a broken job fails once, not N times
    assert shard.diagnostics == [diag]
    assert result.merge is None
    # only the home peer ever saw the job
    assert {a for a, _, _ in mesh.submits} == {ADDRS[0]}


def test_invalid_job_error_is_permanent():
    mesh = ScriptedMesh()
    mesh.script(ADDRS[0], ServeError("bad params", code="RPR-V001"))
    router, _ = make_router(mesh)
    result = router.run("sleep", {"seconds": 0}, shards=1)
    (shard,) = result.shards
    assert shard.status == "failed"
    assert shard.diagnostics[0]["code"] == "RPR-V001"
    assert not shard.rerouted


def test_shard_is_lost_when_no_survivor_remains():
    mesh = ScriptedMesh()
    dead = ServeError("refused", code="RPR-V006")
    mesh.script(ADDRS[0], dead, dead, dead, dead)
    router, _ = make_router(mesh, addrs=ADDRS[:1], max_reroutes=2)
    result = router.run("sleep", {"seconds": 0})
    (shard,) = result.shards
    assert shard.status == "lost"
    assert not result.ok
    assert shard.attempts[-1] == {"peer": None,
                                  "outcome": "no-routable-peer"}


def test_reroute_budget_bounds_the_ping_pong():
    mesh = ScriptedMesh()
    dead = ServeError("refused", code="RPR-V006")
    for addr in ADDRS[:2]:
        mesh.script(addr, *[dead] * 8)
    router, _ = make_router(mesh, addrs=ADDRS[:2], max_reroutes=2)
    result = router.run("sleep", {"seconds": 0}, shards=1)
    (shard,) = result.shards
    assert shard.status == "lost"
    # first attempt + max_reroutes re-routes, then the budget is gone
    assert len(shard.attempts) == 3


# ---- live fabric: 3 daemons, one refuses, bytes still canonical -------------


CAMPAIGN = {"app": "loopback", "seed": 7, "count": 4,
            "levels": ["none", "optimized"]}


def _spawn(tmp_path, name, peers=()):
    srv = ReproServer(ServeConfig(
        max_inflight=2, cache_root=str(tmp_path / "cache"),
        store_root=str(tmp_path / "store"), drain_timeout=10.0,
        name=name, peers=tuple(peers), health_interval=0.2))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    return srv, thread


def _stop(servers):
    for srv, thread in servers:
        srv.request_shutdown()
        thread.join(timeout=15)
        assert not thread.is_alive()


def test_fabric_survives_a_draining_peer_and_merges_identically(tmp_path):
    """The tentpole invariant, live: shard a campaign over three real
    daemons, have one refuse all work (draining), and assert the merged
    output is byte-identical to a clean unsharded run."""
    servers = [_spawn(tmp_path, f"node{i}") for i in range(3)]
    try:
        addrs = sorted(f"{s.address[0]}:{s.address[1]}"
                       for s, _ in servers)
        victim_addr = addrs[0]  # home of shard 1/3
        victim = next(s for s, _ in servers
                      if f"{s.address[0]}:{s.address[1]}" == victim_addr)
        victim.admission.start_drain()  # rejects everything: RPR-V004

        registry = PeerRegistry(addrs)
        router = FabricRouter(registry, store_root=str(tmp_path / "store"),
                              retry=FAST_RETRY, timeout=300)
        result = router.run("campaign", CAMPAIGN)

        assert result.ok
        assert result.rerouted_shards >= 1
        moved = [s for s in result.shards if s.rerouted]
        assert any(h["peer"] == victim_addr and "RPR-V004" in h["outcome"]
                   for s in moved for h in s.attempts)
        assert all(s.peer != victim_addr for s in result.shards)
        assert result.merge is not None

        # byte-identity vs a clean, unsharded, daemon-free run
        solo = run_campaign(
            target="loopback", levels=("none", "optimized"), seed=7,
            count=4, nabort=False, jobs=1,
            cache_root=str(tmp_path / "cache"),
            store_root=str(tmp_path / "solo"))
        solo_merge = merge_runs(str(tmp_path / "solo"), solo.run_id)
        assert result.merge.run.results_path.read_bytes() == \
            solo_merge.run.results_path.read_bytes()
        assert result.merge.matrix_path.read_bytes() == \
            solo_merge.matrix_path.read_bytes()
    finally:
        _stop(servers)


# ---- cross-node coalescing hints --------------------------------------------


def _fingerprint(params):
    return job_fingerprint(JobSpec(kind="sleep", params=params))


def _wait(predicate, timeout=10.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    pytest.fail(f"timed out waiting for {what}")


def test_lookup_reports_inflight_then_known(tmp_path):
    srv, thread = _spawn(tmp_path, "solo")
    try:
        params = {"seconds": 0.8, "token": "lookup-probe"}
        fp = _fingerprint(params)
        client = ServeClient(srv.address, client_id="looker")

        # before: neither in flight nor known
        hint = client.lookup(fp)
        assert hint["event"] == "lookup"
        assert hint["inflight"] is False and hint["known"] is False

        leader = threading.Thread(
            target=lambda: ServeClient(srv.address, client_id="lead")
            .submit("sleep", params, timeout=30))
        leader.start()
        _wait(lambda: srv.coalescer.flight_info(fp)[0], what="flight")
        hint = client.lookup(fp)
        assert hint["inflight"] is True and hint["known"] is False

        leader.join(timeout=15)
        hint = client.lookup(fp)
        assert hint["inflight"] is False
        assert hint["known"] is True  # the journal remembers completions
        assert srv.stats()["fabric"]["lookups_answered"] >= 3
    finally:
        _stop([(srv, thread)])


def test_remote_follow_rides_a_peer_flight(tmp_path):
    """Cross-node coalescing: node B leads a job; node A (peered with B)
    receives the identical submit and follows B's flight over the wire
    instead of executing a duplicate."""
    node_b, thread_b = _spawn(tmp_path, "node-b")
    addr_b = f"{node_b.address[0]}:{node_b.address[1]}"
    node_a, thread_a = _spawn(tmp_path, "node-a", peers=[addr_b])
    try:
        params = {"seconds": 1.2, "token": "xnode"}
        fp = _fingerprint(params)
        replies = {}

        def lead():
            replies["b"] = ServeClient(node_b.address, client_id="cb") \
                .submit("sleep", params, timeout=30)

        leader = threading.Thread(target=lead)
        leader.start()
        _wait(lambda: node_b.coalescer.flight_info(fp)[0],
              what="leader flight on B")

        replies["a"] = ServeClient(node_a.address, client_id="ca") \
            .submit("sleep", params, timeout=30)
        leader.join(timeout=15)

        assert replies["a"].ok and replies["b"].ok
        assert replies["a"].record["token"] == "xnode"
        a_stats = node_a.stats()["fabric"]
        assert a_stats["peer_lookups"] >= 1
        assert a_stats["remote_followed"] == 1
        assert a_stats["remote_fallback"] == 0
        b_stats = node_b.stats()["fabric"]
        assert b_stats["relayed_in"] == 1  # A's follow arrived as a relay
    finally:
        _stop([(node_a, thread_a), (node_b, thread_b)])


def test_remote_follow_falls_back_to_local_when_peer_dies(tmp_path):
    """A peered daemon whose peer is unreachable still executes
    locally — the hint layer is an optimization, never a dependency."""
    node, thread = _spawn(tmp_path, "loner", peers=["127.0.0.1:1"])
    try:
        reply = ServeClient(node.address, client_id="c").submit(
            "sleep", {"seconds": 0.05, "token": "solo"}, timeout=30)
        assert reply.ok
        assert node.stats()["fabric"]["remote_followed"] == 0
    finally:
        _stop([(node, thread)])
