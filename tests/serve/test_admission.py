"""Admission control: budgets, rejections, drain mode."""

import pytest

from repro.errors import ServeError
from repro.serve.admission import AdmissionController


def test_global_capacity_is_running_plus_queued():
    adm = AdmissionController(max_inflight=2, queue_depth=1)
    assert adm.capacity == 3
    for _ in range(3):
        adm.acquire_global()
    with pytest.raises(ServeError) as exc:
        adm.acquire_global()
    assert exc.value.code == "RPR-V002"
    assert adm.stats.admitted == 3
    assert adm.stats.rejected_capacity == 1


def test_release_global_frees_a_slot():
    adm = AdmissionController(max_inflight=1, queue_depth=0)
    adm.acquire_global()
    with pytest.raises(ServeError):
        adm.acquire_global()
    adm.release_global()
    adm.acquire_global()  # does not raise


def test_per_client_budget_is_independent_per_client():
    adm = AdmissionController(per_client=2)
    adm.acquire_client("alice")
    adm.acquire_client("alice")
    with pytest.raises(ServeError) as exc:
        adm.acquire_client("alice")
    assert exc.value.code == "RPR-V003"
    adm.acquire_client("bob")  # a different client is unaffected
    adm.release_client("alice")
    adm.acquire_client("alice")


def test_release_client_below_zero_is_harmless():
    adm = AdmissionController()
    adm.release_client("ghost")
    adm.acquire_client("ghost")
    assert adm.snapshot()["clients"] == {"ghost": 1}


def test_drain_rejects_everything_new():
    adm = AdmissionController()
    adm.acquire_client("c")
    adm.acquire_global()
    adm.start_drain()
    with pytest.raises(ServeError) as exc:
        adm.acquire_client("d")
    assert exc.value.code == "RPR-V004"
    with pytest.raises(ServeError) as exc:
        adm.acquire_global()
    assert exc.value.code == "RPR-V004"
    # already-admitted work still releases cleanly
    adm.release_global()
    adm.release_client("c")
    assert adm.stats.rejected_draining == 2


def test_snapshot_reports_every_budget():
    adm = AdmissionController(max_inflight=3, queue_depth=5, per_client=7)
    adm.acquire_client("c")
    adm.acquire_global()
    snap = adm.snapshot()
    assert snap["inflight"] == 1
    assert snap["capacity"] == 8
    assert snap["per_client"] == 7
    assert snap["clients"] == {"c": 1}
    assert snap["draining"] is False


@pytest.mark.parametrize("kwargs", [
    {"max_inflight": 0},
    {"queue_depth": -1},
    {"per_client": 0},
])
def test_nonsense_budgets_are_refused(kwargs):
    with pytest.raises(ServeError) as exc:
        AdmissionController(**kwargs)
    assert exc.value.code == "RPR-V005"
