"""End-to-end daemon tests: coalescing proof, load, drain, SIGTERM.

Every test runs a real :class:`ReproServer` on a kernel-assigned port
with real clients over TCP — the same path production traffic takes.
The ``sleep`` job kind (a worker-slot-holding no-op) makes concurrency
scenarios deterministic: a leader that sleeps 1s *will* still be in
flight when the barrier releases the followers.
"""

import json
import os
import signal
import subprocess
import sys
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve.client import ServeClient, parse_address
from repro.serve.protocol import canonical_record
from repro.serve.server import ReproServer, ServeConfig

IDENT = {"app": {"kind": "loopback", "params": {"n": 4}},
         "level": "optimized"}


@pytest.fixture
def server(tmp_path):
    """A live daemon on a fresh cache/store; drained at teardown."""
    srv = ReproServer(ServeConfig(
        max_inflight=4, queue_depth=8, per_client=16,
        cache_root=str(tmp_path / "cache"),
        store_root=str(tmp_path / "runs"),
        drain_timeout=10.0,
    ))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.request_shutdown()
    thread.join(timeout=15)
    assert not thread.is_alive()


def client_for(srv, name="test"):
    return ServeClient(srv.address, client_id=name)


# ---- basic verbs ------------------------------------------------------------


def test_ping_and_stats(server):
    cli = client_for(server)
    pong = cli.ping()
    assert pong["event"] == "pong" and pong["draining"] is False
    stats = cli.stats()
    assert stats["event"] == "stats"
    for section in ("jobs", "coalesce", "admission", "cache", "executor",
                    "codecache", "config"):
        assert section in stats


def test_malformed_request_gets_structured_error(server):
    import socket as socketlib

    with socketlib.create_connection(server.address, timeout=5) as conn:
        conn.sendall(b"this is not json\n")
        reply = json.loads(conn.makefile("rb").readline())
    assert reply["event"] == "error"
    assert reply["code"] == "RPR-V001"


def test_bad_job_params_refused_before_admission(server):
    reply = client_for(server).submit(
        "synth", {"app": {"kind": "no-such-app"}}, timeout=10)
    assert reply.terminal["event"] == "error"
    stats = client_for(server).stats()
    assert stats["admission"]["admitted"] == 0


# ---- the coalescing proof ---------------------------------------------------


def test_n_identical_concurrent_jobs_cost_one_synthesis(server):
    """The issue's acceptance bar: N identical concurrent submits against
    a cold cache run exactly one synthesis — 1 cache miss, the rest
    coalesced onto the leader's flight or served warm — and every client
    receives a byte-identical canonical payload."""
    n = 8
    barrier = threading.Barrier(n)

    def submit(i):
        cli = client_for(server, name=f"c{i}")
        barrier.wait()
        return cli.submit("synth", IDENT, timeout=60)

    with ThreadPoolExecutor(n) as pool:
        replies = list(pool.map(submit, range(n)))

    assert all(r.ok for r in replies)
    stats = client_for(server).stats()
    # exactly one actual synthesis: one app-level miss filled once (the
    # fill stores one artifact per process plus the app-level entry)
    assert stats["cache"]["misses"] == 1
    assert stats["cache"]["stores"] == 1 + 4
    assert stats["cache"]["proc_misses"] == 4
    # every non-leader either coalesced onto the flight or (if it arrived
    # after the leader finished) was served from the warm cache
    coalesced = sum(1 for r in replies if r.coalesced)
    warm_hits = sum(1 for r in replies
                    if not r.coalesced and r.record["cache_hit"])
    assert coalesced + warm_hits == n - 1
    assert stats["jobs"]["coalesced"] == coalesced
    # byte-identical canonical payloads for every client
    payloads = {json.dumps(canonical_record(r.record), sort_keys=True)
                for r in replies}
    assert len(payloads) == 1
    # all clients saw the same fingerprint
    assert len({r.fingerprint for r in replies}) == 1


def test_sleep_jobs_coalesce_deterministically(server):
    """With a slow leader, every follower provably rides the flight (no
    cache involved for the sleep kind): 1 leader, n-1 followers."""
    n = 6
    barrier = threading.Barrier(n)

    def submit(i):
        cli = client_for(server, name=f"s{i}")
        barrier.wait()
        return cli.submit("sleep", {"seconds": 1.0, "token": "same"},
                          timeout=30)

    with ThreadPoolExecutor(n) as pool:
        replies = list(pool.map(submit, range(n)))
    assert all(r.ok for r in replies)
    assert sum(1 for r in replies if r.coalesced) == n - 1
    stats = client_for(server).stats()
    assert stats["coalesce"]["leaders"] >= 1
    assert stats["coalesce"]["followers"] == n - 1


def test_distinct_jobs_do_not_coalesce(server):
    cli = client_for(server)
    r1 = cli.submit("sleep", {"seconds": 0.01, "token": "a"}, timeout=10)
    r2 = cli.submit("sleep", {"seconds": 0.01, "token": "b"}, timeout=10)
    assert r1.ok and r2.ok
    assert r1.fingerprint != r2.fingerprint
    assert not r1.coalesced and not r2.coalesced


# ---- mixed-type concurrent load ---------------------------------------------


def test_mixed_job_types_from_concurrent_clients(server):
    """Four clients, four different job kinds, all in flight at once."""
    jobs = [
        ("synth", {"app": {"kind": "loopback", "params": {"n": 3}},
                   "level": "none"}),
        ("sweep", {"name": "load", "levels": ["none"],
                   "apps": [{"kind": "loopback", "params": {"n": 4}}]}),
        ("campaign", {"app": "loopback", "count": 2, "levels": ["none"]}),
        ("sleep", {"seconds": 0.2, "token": "load"}),
    ]
    barrier = threading.Barrier(len(jobs))

    def submit(i):
        kind, params = jobs[i]
        cli = client_for(server, name=f"mix{i}")
        barrier.wait()
        return kind, cli.submit(kind, params, timeout=120)

    with ThreadPoolExecutor(len(jobs)) as pool:
        results = list(pool.map(submit, range(len(jobs))))

    for kind, reply in results:
        assert reply.ok, (kind, reply.terminal)
    by_kind = {kind: reply for kind, reply in results}
    assert by_kind["sweep"].record["kind"] == "sweep"
    assert by_kind["sweep"].record["ok"] is True
    assert by_kind["campaign"].record["kind"] == "campaign"
    assert by_kind["campaign"].record["ok"] is True
    assert by_kind["synth"].record["comb_aluts"] > 0
    stats = client_for(server).stats()
    assert stats["jobs"]["by_kind"] == {
        "synth": 1, "sweep": 1, "campaign": 1, "sleep": 1}
    # sweep/campaign manifests folded their executor stats into the
    # daemon aggregate (counters may be zero, but the merge ran)
    assert stats["executor"]["retries"] >= 0


# ---- admission over the wire ------------------------------------------------


def test_capacity_rejection_over_the_wire(tmp_path):
    srv = ReproServer(ServeConfig(
        max_inflight=1, queue_depth=0, per_client=16,
        cache_root=str(tmp_path / "cache"),
        store_root=str(tmp_path / "runs")))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        hold = ThreadPoolExecutor(1).submit(
            lambda: client_for(srv, "holder").submit(
                "sleep", {"seconds": 2.0, "token": "hold"}, timeout=30))
        # wait until the holder's job is actually running
        deadline = 50
        while srv.job_counters()["active"] == 0 and deadline:
            import time
            time.sleep(0.05)
            deadline -= 1
        reply = client_for(srv, "late").submit(
            "sleep", {"seconds": 0.1, "token": "other"}, timeout=10)
        assert reply.rejected
        assert reply.terminal["code"] == "RPR-V002"
        # ...but an *identical* request coalesces instead of rejecting:
        # followers don't consume global capacity
        rider = client_for(srv, "rider").submit(
            "sleep", {"seconds": 2.0, "token": "hold"}, timeout=30)
        assert rider.ok and rider.coalesced
        assert hold.result(timeout=30).ok
    finally:
        srv.request_shutdown()
        thread.join(timeout=10)


def test_per_client_limit_rejects_the_greedy_client(tmp_path):
    srv = ReproServer(ServeConfig(
        max_inflight=4, queue_depth=8, per_client=1,
        cache_root=str(tmp_path / "cache"),
        store_root=str(tmp_path / "runs")))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        hold = ThreadPoolExecutor(1).submit(
            lambda: ServeClient(srv.address, client_id="greedy").submit(
                "sleep", {"seconds": 2.0, "token": "g1"}, timeout=30))
        deadline = 50
        while srv.job_counters()["active"] == 0 and deadline:
            import time
            time.sleep(0.05)
            deadline -= 1
        second = ServeClient(srv.address, client_id="greedy").submit(
            "sleep", {"seconds": 0.1, "token": "g2"}, timeout=10)
        assert second.rejected
        assert second.terminal["code"] == "RPR-V003"
        # a different client id is unaffected
        other = ServeClient(srv.address, client_id="polite").submit(
            "sleep", {"seconds": 0.1, "token": "g3"}, timeout=10)
        assert other.ok
        assert hold.result(timeout=30).ok
    finally:
        srv.request_shutdown()
        thread.join(timeout=10)


# ---- timeouts and failures --------------------------------------------------


def test_job_timeout_is_transient_and_structured(server):
    reply = client_for(server).submit(
        "sleep", {"seconds": 5.0, "token": "slow"}, timeout=0.3)
    term = reply.terminal
    assert term["status"] == "timeout"
    assert term["transient"] is True
    assert reply.diagnostics[0]["code"] == "RPR-E002"


def test_failing_job_returns_classified_diagnostics(server):
    # an unknown campaign target fingerprints fine but fails at run time
    reply = client_for(server).submit(
        "campaign", {"app": "no-such-target", "count": 1}, timeout=30)
    term = reply.terminal
    assert term["status"] == "failed"
    assert term["transient"] is False  # a deterministic error: no retry
    assert reply.diagnostics, term


# ---- shutdown ---------------------------------------------------------------


def test_drain_finishes_inflight_work(tmp_path):
    srv = ReproServer(ServeConfig(
        max_inflight=2, cache_root=str(tmp_path / "cache"),
        store_root=str(tmp_path / "runs"), drain_timeout=10.0))
    report = {}

    def run():
        report.update(srv.serve_forever())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    inflight = ThreadPoolExecutor(1).submit(
        lambda: ServeClient(srv.address, client_id="d").submit(
            "sleep", {"seconds": 1.0, "token": "drain"}, timeout=30))
    import time
    deadline = 50
    while srv.job_counters()["active"] == 0 and deadline:
        time.sleep(0.05)
        deadline -= 1
    srv.request_shutdown()
    thread.join(timeout=15)
    assert not thread.is_alive()
    assert report["drained"] is True
    assert report["abandoned_jobs"] == 0
    # the in-flight job completed despite the shutdown racing it
    assert inflight.result(timeout=10).ok


def test_shutdown_verb_drains_the_daemon(server):
    reply = client_for(server).shutdown()
    assert reply["event"] == "shutdown"
    # the fixture's teardown asserts the serve thread actually exited


# ---- the full binary under SIGTERM ------------------------------------------


def test_cli_daemon_sigterm_drains_cleanly(tmp_path):
    """`repro serve` as a real subprocess: SIGTERM -> drain -> exit 0."""
    addr_file = tmp_path / "serve.addr"
    env = dict(os.environ)
    src_root = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src_root) + os.pathsep + \
        env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", "2", "--cache", str(tmp_path / "cache"),
         "--store", str(tmp_path / "runs"),
         "--address-file", str(addr_file)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, cwd=str(tmp_path))
    try:
        import time
        for _ in range(100):
            if addr_file.exists() and addr_file.read_text().strip():
                break
            time.sleep(0.1)
        else:
            pytest.fail("daemon never wrote its address file")
        address = parse_address(addr_file.read_text().strip())
        cli = ServeClient(address, client_id="sig")
        reply = cli.submit(
            "synth",
            {"app": {"kind": "loopback", "params": {"n": 3}},
             "level": "none"}, timeout=60)
        assert reply.ok
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0, out
        assert "drained=True" in out
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)


# ---- drain with coalesced followers -----------------------------------------


def _submit_async(srv, name, params):
    return ThreadPoolExecutor(1).submit(
        lambda: ServeClient(srv.address, client_id=name).submit(
            "sleep", params, timeout=30))


def _sleep_fingerprint(params):
    from repro.serve.jobs import JobSpec, job_fingerprint

    return job_fingerprint(JobSpec(kind="sleep", params=params))


def _wait_for(predicate, what, timeout=10.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    pytest.fail(f"timed out waiting for {what}")


def test_drain_delivers_results_to_waiting_followers(tmp_path):
    """SIGTERM with riders on board: a drain must hold the connection
    open until the leader finishes, so every coalesced follower receives
    its terminal event over the wire — never a silent hangup."""
    srv = ReproServer(ServeConfig(
        max_inflight=2, cache_root=str(tmp_path / "cache"),
        store_root=str(tmp_path / "runs"), drain_timeout=10.0))
    report = {}
    thread = threading.Thread(
        target=lambda: report.update(srv.serve_forever()), daemon=True)
    thread.start()

    params = {"seconds": 1.2, "token": "drain-followers"}
    fp = _sleep_fingerprint(params)
    leader = _submit_async(srv, "lead", params)
    _wait_for(lambda: srv.coalescer.flight_info(fp)[0], "leader flight")
    followers = [_submit_async(srv, f"f{i}", params) for i in range(2)]
    _wait_for(lambda: srv.coalescer.flight_info(fp)[1] == 2, "followers")

    srv.request_shutdown()
    thread.join(timeout=15)
    assert not thread.is_alive()
    assert report["drained"] is True
    assert report["aborted_flights"] == 0  # nobody needed last rites

    for fut in [leader, *followers]:
        reply = fut.result(timeout=10)
        assert reply.ok
        assert reply.terminal["event"] == "result"
    # exactly one execution happened for all three clients
    assert srv.job_counters()["coalesced"] == 2


def test_abandoned_drain_aborts_followers_with_terminal_failure(tmp_path):
    """When the drain deadline abandons a job, waiting followers must
    still get a terminal event — a transient RPR-V004 failure they can
    re-route — instead of hanging on a dead daemon."""
    srv = ReproServer(ServeConfig(
        max_inflight=2, cache_root=str(tmp_path / "cache"),
        store_root=str(tmp_path / "runs"), drain_timeout=0.3))
    report = {}
    thread = threading.Thread(
        target=lambda: report.update(srv.serve_forever()), daemon=True)
    thread.start()

    params = {"seconds": 3.0, "token": "abandoned"}
    fp = _sleep_fingerprint(params)
    leader = _submit_async(srv, "lead", params)
    _wait_for(lambda: srv.coalescer.flight_info(fp)[0], "leader flight")
    follower = _submit_async(srv, "follower", params)
    _wait_for(lambda: srv.coalescer.flight_info(fp)[1] == 1, "follower")

    srv.request_shutdown()
    thread.join(timeout=15)
    assert not thread.is_alive()
    assert report["drained"] is False
    assert report["abandoned_jobs"] == 1
    assert report["aborted_flights"] >= 1

    reply = follower.result(timeout=10)
    term = reply.terminal
    assert term["event"] == "result" and term["status"] == "failed"
    assert term["transient"] is True
    assert any(d["code"] == "RPR-V004" for d in term["diagnostics"])
    # the leader's worker finishes anyway; its client gets the real result
    assert leader.result(timeout=15).ok


def test_riders_join_during_drain_but_new_work_is_rejected(server):
    """The accept/drain race window: a request for an already-flying
    fingerprint is a rider (its leader predates the drain) and is
    admitted; genuinely new work is refused with RPR-V004."""
    params = {"seconds": 1.0, "token": "rider"}
    fp = _sleep_fingerprint(params)
    leader = _submit_async(server, "lead", params)
    _wait_for(lambda: server.coalescer.flight_info(fp)[0], "leader flight")

    server.admission.start_drain()
    rider = client_for(server, "rider").submit("sleep", params, timeout=30)
    assert rider.ok and rider.coalesced

    fresh = client_for(server, "fresh").submit(
        "sleep", {"seconds": 0.1, "token": "new-work"}, timeout=30)
    assert fresh.rejected
    assert fresh.terminal["code"] == "RPR-V004"
    assert leader.result(timeout=10).ok
