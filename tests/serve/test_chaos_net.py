"""Network-layer chaos against the serve fabric: refused connects,
truncated streams, delayed replies, and the hardest fault — a daemon
SIGKILL'd mid-campaign — with the byte-identity invariant asserted
across the failover."""

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import ServeError
from repro.faults.campaign import run_campaign
from repro.lab.chaos import ChaosSpec
from repro.lab.retry import RetryPolicy, is_transient_exception
from repro.lab.shard import merge_runs
from repro.serve.client import ServeClient, parse_address
from repro.serve.fabric import FabricRouter
from repro.serve.peers import PeerRegistry
from repro.serve.server import ReproServer, ServeConfig


def _spawn(tmp_path):
    srv = ReproServer(ServeConfig(
        max_inflight=2, cache_root=str(tmp_path / "cache"),
        store_root=str(tmp_path / "store"), drain_timeout=10.0))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    return srv, thread


def _stop(srv, thread):
    srv.request_shutdown()
    thread.join(timeout=15)
    assert not thread.is_alive()


def _arm(monkeypatch, tmp_path, **kw):
    spec = ChaosSpec(state_dir=str(tmp_path / "chaos"), **kw)
    monkeypatch.setenv("REPRO_CHAOS", spec.to_env())
    return spec


# ---- connect faults: the client's bounded reconnect loop --------------------


def test_refused_connect_is_retried_transparently(tmp_path, monkeypatch):
    """One chaos-refused connect must be invisible to the caller: the
    client's RetryPolicy-backed reconnect loop absorbs it."""
    srv, thread = _spawn(tmp_path)
    try:
        _arm(monkeypatch, tmp_path, connect_refuse=1.0,
             only=("serve-connect",))
        reply = ServeClient(srv.address, client_id="c").submit(
            "sleep", {"seconds": 0.02, "token": "retry"}, timeout=30)
        assert reply.ok
        # the fault fired exactly once (the ledger claimed it)
        fired = list((tmp_path / "chaos").glob("connect_refuse-*.fired"))
        assert len(fired) == 1
    finally:
        _stop(srv, thread)


def test_single_attempt_client_never_retries(tmp_path, monkeypatch):
    """connect_attempts=1 means fail fast — the peer health checker and
    fabric router want the raw verdict, not a masked one."""
    srv, thread = _spawn(tmp_path)
    try:
        _arm(monkeypatch, tmp_path, connect_refuse=1.0,
             only=("serve-connect",))
        with pytest.raises(ServeError) as exc:
            ServeClient(srv.address, client_id="c",
                        connect_attempts=1).ping()
        assert exc.value.code == "RPR-V006"
    finally:
        _stop(srv, thread)


def test_dead_daemon_exhausts_retries_with_v006():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()  # nobody is listening here now
    client = ServeClient(("127.0.0.1", port), client_id="c",
                         connect_attempts=2,
                         retry_policy=RetryPolicy(
                             max_attempts=2, base_delay=0.01,
                             max_delay=0.02, breaker=None))
    with pytest.raises(ServeError) as exc:
        client.ping()
    assert exc.value.code == "RPR-V006"
    assert is_transient_exception(exc.value)


# ---- stream faults: truncation vs delay -------------------------------------


def test_midstream_cut_raises_transient_v007_with_partial_events(
        tmp_path, monkeypatch):
    """A daemon dying after ``accepted`` is a *different* failure from
    one that never answered: RPR-V007, transient, partial events kept,
    and never blindly retried by the client itself."""
    srv, thread = _spawn(tmp_path)
    try:
        _arm(monkeypatch, tmp_path, stream_cut=1.0, only=("serve-stream",))
        params = {"seconds": 0.02, "token": "cut"}
        with pytest.raises(ServeError) as exc:
            ServeClient(srv.address, client_id="c").submit(
                "sleep", params, timeout=30)
        err = exc.value
        assert err.code == "RPR-V007"
        assert is_transient_exception(err)
        assert [ev["event"] for ev in err.events] == ["accepted"]
        # resubmission is the *caller's* decision — and it succeeds,
        # because the fault ledger fired the cut exactly once
        reply = ServeClient(srv.address, client_id="c").submit(
            "sleep", params, timeout=30)
        assert reply.ok
    finally:
        _stop(srv, thread)


def test_delayed_reply_stalls_the_terminal_event(tmp_path, monkeypatch):
    srv, thread = _spawn(tmp_path)
    try:
        _arm(monkeypatch, tmp_path, reply_delay=1.0, delay_s=0.4,
             only=("serve-reply",))
        t0 = time.monotonic()
        reply = ServeClient(srv.address, client_id="c").submit(
            "sleep", {"seconds": 0.02, "token": "slow"}, timeout=30)
        assert reply.ok
        assert time.monotonic() - t0 >= 0.4
    finally:
        _stop(srv, thread)


# ---- the marquee chaos test: SIGKILL one of three daemons mid-campaign ------


def _spawn_daemon(tmp_path, name, extra_env=None):
    addr_file = tmp_path / f"{name}.addr"
    env = dict(os.environ)
    env.pop("REPRO_CHAOS", None)  # only the victim gets chaos
    src_root = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src_root) + os.pathsep + \
        env.get("PYTHONPATH", "")
    env.update(extra_env or {})
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", "2", "--name", name,
         "--cache", str(tmp_path / "cache"),
         "--store", str(tmp_path / "store"),
         "--address-file", str(addr_file)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, cwd=str(tmp_path))
    return proc, addr_file


def _await_address(proc, addr_file):
    for _ in range(100):
        if proc.poll() is not None:
            pytest.fail(f"daemon died on startup: {proc.stdout.read()}")
        if addr_file.exists() and addr_file.read_text().strip():
            return addr_file.read_text().strip()
        time.sleep(0.1)
    pytest.fail("daemon never wrote its address file")


def test_fabric_survives_a_daemon_sigkill_mid_campaign(tmp_path):
    """Kill 1 of 3 real daemons (chaos SIGKILL as its shard starts
    executing) and assert the full robustness story: the shard re-routes,
    the merged bytes equal a clean single-process run, and the victim's
    write-ahead journal surfaces the orphaned job on restart."""
    victim_name = "chaos-victim"
    chaos_env = {"REPRO_CHAOS": ChaosSpec(
        state_dir=str(tmp_path / "chaos"), daemon_kill=1.0,
        only=("serve-exec",)).to_env()}
    daemons = [
        _spawn_daemon(tmp_path, victim_name, extra_env=chaos_env),
        _spawn_daemon(tmp_path, "node-1"),
        _spawn_daemon(tmp_path, "node-2"),
    ]
    try:
        addrs = sorted(_await_address(proc, af) for proc, af in daemons)
        victim_proc = daemons[0][0]

        registry = PeerRegistry(addrs)
        router = FabricRouter(
            registry, store_root=str(tmp_path / "store"),
            retry=RetryPolicy(max_attempts=8, base_delay=0.05,
                              max_delay=0.2, breaker=None),
            timeout=300)
        result = router.run("campaign", {
            "app": "loopback", "seed": 11, "count": 4,
            "levels": ["none", "optimized"]})

        assert result.ok
        assert result.rerouted_shards >= 1
        # the victim really was SIGKILL'd (by itself, mid-execution)
        victim_proc.wait(timeout=15)
        assert victim_proc.returncode == -signal.SIGKILL
        # the failed hop is on the audit trail as a truncated stream
        assert any(h["outcome"] == "error:RPR-V007"
                   for s in result.shards for h in s.attempts)

        # byte-identity: the merged fabric run == a clean local run
        solo = run_campaign(
            target="loopback", levels=("none", "optimized"), seed=11,
            count=4, nabort=False, jobs=1,
            cache_root=str(tmp_path / "cache"),
            store_root=str(tmp_path / "solo"))
        solo_merge = merge_runs(str(tmp_path / "solo"), solo.run_id)
        assert result.merge.run.results_path.read_bytes() == \
            solo_merge.run.results_path.read_bytes()
        assert result.merge.matrix_path.read_bytes() == \
            solo_merge.matrix_path.read_bytes()

        # the victim's WAL journal: accepted, never done -> orphaned,
        # and a restarted daemon with the same name reports it
        restarted = ReproServer(ServeConfig(
            cache_root=str(tmp_path / "cache"),
            store_root=str(tmp_path / "store"), name=victim_name))
        try:
            journal = restarted.stats()["journal"]
            assert journal["epoch"] == 2
            assert journal["orphaned"] >= 1
            assert any(o["kind"] == "campaign"
                       for o in journal["orphans"])
        finally:
            restarted._listener.close()
    finally:
        for proc, _ in daemons:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc, _ in daemons:
            if proc.poll() is None:
                try:
                    proc.communicate(timeout=20)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.communicate(timeout=10)


def test_parse_address_roundtrip():
    assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
    with pytest.raises(ServeError):
        parse_address("no-port-here")
