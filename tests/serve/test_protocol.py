"""Wire-protocol framing, validation and the shared result schemas."""

import json

import pytest

from repro.errors import ServeError
from repro.serve import protocol


# ---- framing ----------------------------------------------------------------


def test_encode_decode_roundtrip():
    msg = {"op": "submit", "job": {"kind": "sleep", "params": {"n": 1}}}
    line = protocol.encode(msg)
    assert line.endswith(b"\n")
    assert protocol.decode_line(line) == msg
    assert protocol.decode_line(line.decode()) == msg


def test_encode_is_one_line_and_sorted():
    line = protocol.encode({"b": 1, "a": {"z": 2, "y": 3}})
    assert line.count(b"\n") == 1
    assert line.index(b'"a"') < line.index(b'"b"')


def test_decode_rejects_garbage():
    with pytest.raises(ServeError) as exc:
        protocol.decode_line(b"not json at all\n")
    assert exc.value.code == "RPR-V001"


def test_decode_rejects_non_object():
    with pytest.raises(ServeError) as exc:
        protocol.decode_line(b"[1, 2, 3]\n")
    assert exc.value.code == "RPR-V001"


def test_decode_rejects_undecodable_bytes():
    with pytest.raises(ServeError) as exc:
        protocol.decode_line(b"\xff\xfe{}\n")
    assert exc.value.code == "RPR-V001"


# ---- request validation -----------------------------------------------------


def test_parse_request_normalizes_submit():
    req = protocol.parse_request(protocol.submit_request(
        "synth", {"level": "none"}, client="c1", timeout=5))
    assert req == {"op": "submit", "client": "c1", "timeout": 5.0,
                   "relay": False,
                   "job": {"kind": "synth", "params": {"level": "none"}}}


def test_parse_request_defaults_client_and_timeout():
    req = protocol.parse_request({"op": "stats"})
    assert req["client"] == "anon"
    assert req["timeout"] is None


@pytest.mark.parametrize("bad", [
    {"op": "nope"},
    {},
    {"op": "submit"},
    {"op": "submit", "job": "synth"},
    {"op": "submit", "job": {"kind": "frobnicate"}},
    {"op": "submit", "job": {"kind": "synth", "params": []}},
    {"op": "submit", "job": {"kind": "synth"}, "timeout": "soon"},
    {"op": "submit", "job": {"kind": "synth"}, "timeout": -1},
])
def test_parse_request_rejects_malformed(bad):
    with pytest.raises(ServeError) as exc:
        protocol.parse_request(bad)
    assert exc.value.code == "RPR-V001"


# ---- events -----------------------------------------------------------------


def test_every_event_carries_schema():
    events = [
        protocol.accepted_event("j1", "synth", "abc", coalesced=True),
        protocol.result_event("j1", "synth", "ok", record={"x": 1}),
        protocol.rejected_event("RPR-V002", "full"),
        protocol.error_event("RPR-V001", "bad"),
    ]
    for ev in events:
        assert ev["schema"] == protocol.PROTOCOL_VERSION
        assert ev["event"] in protocol.TERMINAL_EVENTS + ("accepted",)


def test_result_event_ok_carries_record_not_diagnostics():
    ev = protocol.result_event("j1", "synth", "ok", record={"x": 1},
                               elapsed_s=0.123456)
    assert ev["record"] == {"x": 1}
    assert "diagnostics" not in ev
    assert ev["elapsed_s"] == 0.1235


def test_result_event_failure_carries_sorted_diagnostics():
    diags = [
        {"code": "RPR-E002", "severity": "error", "message": "hang",
         "span": {"file": "b.c", "line": 9, "col": 1}},
        {"code": "RPR-E001", "severity": "error", "message": "crash",
         "span": {"file": "a.c", "line": 2, "col": 1}},
    ]
    ev = protocol.result_event("j1", "synth", "failed", diagnostics=diags,
                               transient=True)
    assert "record" not in ev
    assert ev["transient"] is True
    files = [d["span"]["file"] for d in ev["diagnostics"]]
    assert files == sorted(files)


# ---- canonical records ------------------------------------------------------


def test_canonical_record_strips_only_volatile_keys():
    record = {"point_id": "p", "comb_aluts": 12, "elapsed_s": 0.5,
              "cache_hit": True, "cache_stats": {"hits": 1}, "attempts": 2}
    canon = protocol.canonical_record(record)
    assert canon == {"point_id": "p", "comb_aluts": 12}
    # a miss and a hit of the same point canonicalize identically
    miss = dict(record, cache_hit=False, elapsed_s=3.2,
                cache_stats={"misses": 1}, attempts=1)
    assert protocol.canonical_record(miss) == canon


# ---- shared summary schemas -------------------------------------------------


class _Run:
    run_id = "r-1"


class _Spec:
    name = "s"
    seeds = (0, 3)


class _SweepResultStub:
    spec = _Spec()
    run = _Run()
    ok = True
    manifest = {"status": "completed"}
    records = {"b": {"point_id": "b"}, "a": {"point_id": "a"}}

    class _P:
        def __init__(self, pid):
            self.point_id = pid

    points = [_P("a"), _P("b")]


def test_sweep_summary_shape_and_record_order():
    s = protocol.sweep_summary(_SweepResultStub())
    assert s["kind"] == "sweep" and s["schema"] == protocol.PROTOCOL_VERSION
    assert s["points"] == ["a", "b"]
    assert [r["point_id"] for r in s["records"]] == ["a", "b"]
    json.dumps(s)  # must be JSON-able as-is


def test_difftest_summary_shape():
    class Stub:
        spec = _Spec()
        run = _Run()
        ok = False
        manifest = {"status": "completed-with-failures"}
        records = {"seed-1": {"point_id": "seed-1"}}
        seed_files = ["lab-runs/x/seed-1.json"]

    s = protocol.difftest_summary(Stub())
    assert s["kind"] == "difftest" and s["ok"] is False
    assert s["seeds"] == [0, 3]
    assert s["seed_files"] == ["lab-runs/x/seed-1.json"]
    json.dumps(s)
