"""Peer registry: the up/suspect/down state machine, deterministic
failover order, throttled recovery probing, and the health checker."""

import threading
import time

import pytest

from repro.errors import ServeError
from repro.serve.peers import HealthChecker, PeerRegistry

ADDRS = ["127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"]


class FakeMesh:
    """An injectable client factory modelling any liveness pattern:
    ``alive[addr]`` flips peers dead/alive, ``pings[addr]`` counts."""

    def __init__(self, addrs):
        self.alive = {a: True for a in addrs}
        self.draining = {a: False for a in addrs}
        self.pings = {a: 0 for a in addrs}

    def __call__(self, address):
        mesh = self

        class _Client:
            def ping(self, timeout=None):
                mesh.pings[address] += 1
                if not mesh.alive[address]:
                    raise ConnectionRefusedError(f"{address} is dead")
                return {"event": "pong",
                        "draining": mesh.draining[address]}

        return _Client()


@pytest.fixture
def mesh():
    return FakeMesh(ADDRS)


@pytest.fixture
def registry(mesh):
    return PeerRegistry(ADDRS, down_after=3, probe_every=4,
                        client_factory=mesh)


# ---- the state machine ------------------------------------------------------


def test_everyone_starts_up_and_routable(registry):
    assert registry.addresses == sorted(ADDRS)
    assert registry.routable() == sorted(ADDRS)
    assert all(p["status"] == "up"
               for p in registry.snapshot()["peers"])


def test_one_failure_is_suspect_not_down(registry):
    registry.record_failure(ADDRS[1], "blip")
    state = registry.state(ADDRS[1])
    assert state.status == "suspect"
    # suspect peers stay routable: one dropped packet must never
    # reroute a campaign
    assert ADDRS[1] in registry.routable()


def test_consecutive_failures_take_a_peer_down(registry):
    for _ in range(3):
        registry.record_failure(ADDRS[1], "dead")
    assert registry.state(ADDRS[1]).status == "down"
    assert ADDRS[1] not in registry.routable()


def test_success_resets_the_failure_streak(registry):
    registry.record_failure(ADDRS[1])
    registry.record_failure(ADDRS[1])
    registry.record_success(ADDRS[1])
    assert registry.state(ADDRS[1]).status == "up"
    assert registry.state(ADDRS[1]).consecutive_failures == 0
    # the streak restarts: two more failures are still only suspect
    registry.record_failure(ADDRS[1])
    registry.record_failure(ADDRS[1])
    assert registry.state(ADDRS[1]).status == "suspect"


def test_interleaved_failures_never_take_a_peer_down(registry):
    """Non-consecutive failures (a flaky network, not a dead peer)
    keep oscillating between suspect and up."""
    for _ in range(10):
        registry.record_failure(ADDRS[0])
        registry.record_success(ADDRS[0])
    assert registry.state(ADDRS[0]).status == "up"


def test_unknown_peer_raises(registry):
    with pytest.raises(ServeError):
        registry.state("127.0.0.1:1")
    # evidence about unknown peers is ignored, not fatal
    registry.record_failure("127.0.0.1:1")
    registry.record_success("127.0.0.1:1")


# ---- deterministic failover order -------------------------------------------


def test_survivor_after_walks_sorted_cyclic_order(registry):
    order = sorted(ADDRS)
    assert registry.survivor_after(order[0]) == order[1]
    assert registry.survivor_after(order[1]) == order[2]
    assert registry.survivor_after(order[2]) == order[0]  # wraps


def test_survivor_after_skips_down_peers(registry):
    order = sorted(ADDRS)
    for _ in range(3):
        registry.record_failure(order[1])
    assert registry.survivor_after(order[0]) == order[2]


def test_survivor_after_none_when_alone(mesh):
    reg = PeerRegistry(ADDRS[:1], client_factory=mesh)
    assert reg.survivor_after(ADDRS[0]) is None


def test_survivor_after_none_when_everyone_else_is_down(registry):
    order = sorted(ADDRS)
    for addr in order[1:]:
        for _ in range(3):
            registry.record_failure(addr)
    assert registry.survivor_after(order[0]) is None


# ---- probing ----------------------------------------------------------------


def test_check_feeds_the_state_machine(registry, mesh):
    assert registry.check(ADDRS[0]) is True
    mesh.alive[ADDRS[0]] = False
    assert registry.check(ADDRS[0]) is False
    assert registry.state(ADDRS[0]).status == "suspect"


def test_sweep_pings_every_live_peer(registry, mesh):
    result = registry.sweep()
    assert result == {a: True for a in sorted(ADDRS)}
    assert all(mesh.pings[a] == 1 for a in ADDRS)


def test_down_peer_probed_every_nth_sweep_and_recovers(registry, mesh):
    victim = sorted(ADDRS)[1]
    mesh.alive[victim] = False
    for _ in range(3):
        registry.sweep()
    assert registry.state(victim).status == "down"
    pings_when_down = mesh.pings[victim]

    # three sweeps while down: not yet the probe_every-th -> no pings
    mesh.alive[victim] = True
    for _ in range(3):
        registry.sweep()
    assert mesh.pings[victim] == pings_when_down

    # the 4th down-sweep is the deterministic recovery probe
    probed = registry.sweep()
    assert probed[victim] is True
    assert mesh.pings[victim] == pings_when_down + 1
    assert registry.state(victim).status == "up"
    assert victim in registry.routable()
    assert registry.stats.recovery_probes == 1


def test_sweep_notices_draining_peers(registry, mesh):
    mesh.draining[ADDRS[2]] = True
    registry.sweep()
    assert registry.state(ADDRS[2]).draining is True
    assert registry.state(ADDRS[2]).status == "up"


# ---- the checker thread -----------------------------------------------------


def test_health_checker_marks_a_dead_peer_down(mesh):
    registry = PeerRegistry(ADDRS, down_after=2, client_factory=mesh)
    mesh.alive[ADDRS[0]] = False
    checker = HealthChecker(registry, interval_s=0.02)
    checker.start()
    try:
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if registry.state(ADDRS[0]).status == "down":
                break
            time.sleep(0.01)
        assert registry.state(ADDRS[0]).status == "down"
        assert registry.routable() == sorted(ADDRS[1:])
    finally:
        checker.stop()


def test_health_checker_survives_a_raising_factory():
    def bomb(address):
        raise RuntimeError("factory exploded")

    registry = PeerRegistry(ADDRS, down_after=2, client_factory=bomb)
    checker = HealthChecker(registry, interval_s=0.02)
    checker.start()
    try:
        time.sleep(0.1)
        # failures were recorded, the thread did not die
        assert registry.stats.ping_failures > 0
    finally:
        checker.stop()


def test_registry_is_thread_safe_under_concurrent_evidence(registry):
    def hammer(addr):
        for _ in range(200):
            registry.record_failure(addr)
            registry.record_success(addr)
            registry.routable()
            registry.survivor_after(addr)

    threads = [threading.Thread(target=hammer, args=(a,)) for a in ADDRS]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(p["status"] == "up"
               for p in registry.snapshot()["peers"])


def test_bad_registry_parameters_are_refused(mesh):
    with pytest.raises(ServeError):
        PeerRegistry(ADDRS, down_after=0, client_factory=mesh)
    with pytest.raises(ServeError):
        PeerRegistry(ADDRS, probe_every=0, client_factory=mesh)
