"""Coalescer semantics: leader election, follower waits, atomicity."""

import threading

import pytest

from repro.errors import ServeError
from repro.serve.coalesce import Coalescer, Flight


def test_first_join_leads_second_follows():
    c = Coalescer()
    f1, lead1 = c.join("k")
    f2, lead2 = c.join("k")
    assert lead1 and not lead2
    assert f1 is f2
    assert c.inflight == 1
    assert c.stats.leaders == 1 and c.stats.followers == 1


def test_distinct_keys_get_distinct_flights():
    c = Coalescer()
    f1, _ = c.join("a")
    f2, _ = c.join("b")
    assert f1 is not f2
    assert c.inflight == 2


def test_complete_releases_followers_with_the_value():
    c = Coalescer()
    flight, _ = c.join("k")
    got = []
    t = threading.Thread(target=lambda: got.append(flight.wait(5)))
    t.start()
    c.complete(flight, value=42)
    t.join(timeout=5)
    assert got == [42]
    assert c.inflight == 0
    assert c.stats.resolved == 1


def test_complete_with_error_reraises_in_followers():
    c = Coalescer()
    flight, _ = c.join("k")
    c.complete(flight, error=ServeError("boom", code="RPR-V001"))
    with pytest.raises(ServeError):
        flight.wait(1)
    assert c.stats.rejected == 1


def test_join_after_complete_elects_a_new_leader():
    c = Coalescer()
    flight, _ = c.join("k")
    c.complete(flight, value=1)
    flight2, lead2 = c.join("k")
    assert lead2 and flight2 is not flight


def test_can_lead_veto_creates_no_flight():
    c = Coalescer()

    def veto():
        raise ServeError("no capacity", code="RPR-V002")

    with pytest.raises(ServeError):
        c.join("k", can_lead=veto)
    assert c.inflight == 0
    # ...but a follower never consults the veto
    c.join("k")
    _, is_leader = c.join("k", can_lead=veto)
    assert not is_leader


def test_double_complete_is_first_wins():
    c = Coalescer()
    flight, _ = c.join("k")
    c.complete(flight, value="first")
    c.complete(flight, value="second")
    c.complete(flight, error=RuntimeError("late"))
    assert flight.wait(1) == "first"
    assert c.stats.resolved == 1 and c.stats.rejected == 0


def test_follower_wait_timeout_leaves_flight_flying():
    c = Coalescer()
    flight, _ = c.join("k")
    with pytest.raises(TimeoutError):
        flight.wait(0.01)
    assert not flight.done
    c.complete(flight, value=7)
    assert flight.wait(1) == 7


def test_concurrent_joins_elect_exactly_one_leader():
    c = Coalescer()
    barrier = threading.Barrier(16)
    results = []
    lock = threading.Lock()

    def join():
        barrier.wait()
        flight, is_leader = c.join("hot")
        with lock:
            results.append((flight, is_leader))

    threads = [threading.Thread(target=join) for _ in range(16)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=5)
    leaders = [f for f, lead in results if lead]
    assert len(leaders) == 1
    assert len({id(f) for f, _ in results}) == 1  # all on one flight
    assert c.stats.leaders == 1 and c.stats.followers == 15


def test_flight_waiters_counts_followers():
    c = Coalescer()
    flight, _ = c.join("k")
    c.join("k")
    c.join("k")
    assert flight.waiters == 2
