"""``repro submit`` exit codes: one per terminal outcome, so scripts
and CI can branch on *why* a job did not succeed without parsing
output."""

import threading

import pytest

from repro.cli import SUBMIT_EXIT, main
from repro.serve.server import ReproServer, ServeConfig


@pytest.fixture
def server(tmp_path):
    srv = ReproServer(ServeConfig(
        max_inflight=2, cache_root=str(tmp_path / "cache"),
        store_root=str(tmp_path / "runs"), drain_timeout=10.0))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.request_shutdown()
    thread.join(timeout=15)
    assert not thread.is_alive()


def _addr(srv):
    return f"{srv.address[0]}:{srv.address[1]}"


def test_exit_map_covers_every_terminal_outcome():
    assert SUBMIT_EXIT == {"ok": 0, "failed": 1, "timeout": 2,
                           "rejected": 3, "error": 4}


def test_ok_exits_zero(server, capsys):
    rc = main(["submit", "--address", _addr(server),
               "synth", "--app", "loopback:3", "--level", "none"])
    assert rc == 0
    assert "ok" in capsys.readouterr().out


def test_failed_job_exits_one(server, capsys):
    # the campaign fingerprint is a params hash, so the bad target is
    # only discovered at run time -> a failed result, not a refusal
    rc = main(["submit", "--address", _addr(server),
               "campaign", "--app", "no-such-target", "--count", "2"])
    assert rc == 1


def test_timeout_exits_two(server, capsys):
    rc = main(["submit", "--address", _addr(server),
               "--timeout", "0.001", "synth", "--app", "loopback:5"])
    assert rc == 2


def test_rejected_exits_three(server, capsys):
    server.admission.start_drain()
    rc = main(["submit", "--address", _addr(server),
               "synth", "--app", "loopback:3"])
    assert rc == 3


def test_refused_job_exits_four(server, capsys):
    # an empty apps list is refused before admission: an error event
    rc = main(["submit", "--address", _addr(server),
               "sweep", "--apps", ""])
    assert rc == 4
