"""The write-ahead job journal: WAL ordering, orphan detection across
daemon restarts, fingerprint knowledge, and torn-tail tolerance."""

import json

from repro.serve.journal import JobJournal, journal_run_id


def test_journal_run_id_is_stable_and_sanitized():
    assert journal_run_id("node-a") == "serve-journal.node-a"
    assert journal_run_id("127.0.0.1:8080") == \
        "serve-journal.127.0.0.1-8080"
    assert journal_run_id("") == "serve-journal.anon"


def test_fresh_journal_has_no_orphans(tmp_path):
    j = JobJournal(str(tmp_path), "node-a")
    assert j.epoch == 1
    assert j.orphans == []
    snap = j.snapshot()
    assert snap["orphaned"] == 0
    assert snap["epoch"] == 1


def test_accepted_is_written_before_done(tmp_path):
    """The write-ahead property: after accepted() alone the record is
    already durable on disk."""
    j = JobJournal(str(tmp_path), "node-a")
    j.accepted("j1", "fp-abc", "synth", "client-1")
    lines = [json.loads(ln) for ln in
             j.run.results_path.read_text().splitlines()]
    phases = [rec["phase"] for rec in lines]
    assert phases == ["boot", "accepted"]
    assert lines[1]["fingerprint"] == "fp-abc"
    assert lines[1]["kind"] == "synth"


def test_completed_jobs_do_not_orphan(tmp_path):
    j1 = JobJournal(str(tmp_path), "node-a")
    j1.accepted("j1", "fp-abc", "synth", "c")
    j1.done("j1", "fp-abc", "ok")
    j2 = JobJournal(str(tmp_path), "node-a")
    assert j2.epoch == 2
    assert j2.orphans == []
    assert j2.known("fp-abc") is True


def test_crash_between_accept_and_done_surfaces_an_orphan(tmp_path):
    j1 = JobJournal(str(tmp_path), "node-a")
    j1.accepted("j1", "fp-abc", "campaign", "c")
    j1.accepted("j2", "fp-def", "sweep", "c")
    j1.done("j2", "fp-def", "ok")
    # daemon "dies" here: j1 accepted, never done
    j2 = JobJournal(str(tmp_path), "node-a")
    assert j2.epoch == 2
    assert [o["fingerprint"] for o in j2.orphans] == ["fp-abc"]
    assert j2.orphans[0]["kind"] == "campaign"
    snap = j2.snapshot()
    assert snap["orphaned"] == 1
    assert snap["orphans"][0]["fingerprint"] == "fp-abc"


def test_job_ids_do_not_collide_across_epochs(tmp_path):
    """Every daemon life restarts job numbering at j1; the epoch prefix
    keeps their journal keys distinct."""
    j1 = JobJournal(str(tmp_path), "node-a")
    j1.accepted("j1", "fp-old", "synth", "c")  # orphaned in epoch 1
    j2 = JobJournal(str(tmp_path), "node-a")
    j2.accepted("j1", "fp-new", "synth", "c")  # same id, new epoch
    j2.done("j1", "fp-new", "ok")
    j3 = JobJournal(str(tmp_path), "node-a")
    # epoch 2's j1 completed; epoch 1's j1 is still the orphan
    assert [o["fingerprint"] for o in j3.orphans] == ["fp-old"]


def test_failed_jobs_count_as_done_but_not_known(tmp_path):
    j1 = JobJournal(str(tmp_path), "node-a")
    j1.accepted("j1", "fp-abc", "synth", "c")
    j1.done("j1", "fp-abc", "failed")
    j2 = JobJournal(str(tmp_path), "node-a")
    assert j2.orphans == []           # its fate was recorded
    assert j2.known("fp-abc") is False  # but it never completed ok


def test_known_tracks_live_completions_too(tmp_path):
    j = JobJournal(str(tmp_path), "node-a")
    assert j.known("fp-abc") is False
    j.accepted("j1", "fp-abc", "synth", "c")
    j.done("j1", "fp-abc", "ok")
    assert j.known("fp-abc") is True


def test_torn_tail_is_healed_not_fatal(tmp_path):
    """A SIGKILL mid-append leaves a half-written line; the next epoch
    heals it, counts it, and keeps every intact record."""
    j1 = JobJournal(str(tmp_path), "node-a")
    j1.accepted("j1", "fp-abc", "synth", "c")
    with open(j1.run.results_path, "a") as fh:
        fh.write('{"journal_schema": 1, "phase": "done", "poi')  # torn
    j2 = JobJournal(str(tmp_path), "node-a")
    assert j2.snapshot()["torn_lines_healed"] == 1
    # the torn done-record never landed, so the job is an orphan
    assert [o["fingerprint"] for o in j2.orphans] == ["fp-abc"]
    # and the journal keeps appending cleanly after the heal
    j2.accepted("j1", "fp-new", "synth", "c")
    j2.done("j1", "fp-new", "ok")
    j3 = JobJournal(str(tmp_path), "node-a")
    assert j3.known("fp-new") is True


def test_distinct_daemon_names_do_not_share_journals(tmp_path):
    ja = JobJournal(str(tmp_path), "node-a")
    ja.accepted("j1", "fp-abc", "synth", "c")
    jb = JobJournal(str(tmp_path), "node-b")
    assert jb.orphans == []
    assert ja.run.dir != jb.run.dir
