"""Unit tests for the mini C preprocessor."""

import pytest

from repro.errors import PreprocessorError
from repro.frontend.cpp import KNOWN_HEADERS, preprocess


def test_plain_text_passthrough():
    res = preprocess("int x;\nint y;\n")
    assert res.text == "int x;\nint y;\n"


def test_define_object_macro_expands():
    res = preprocess("#define N 16\nint a[N];")
    assert "int a[16];" in res.text


def test_define_without_value_defines_flag():
    res = preprocess("#define FLAG\n")
    assert "FLAG" in res.defines


def test_undef_removes_macro():
    res = preprocess("#define N 4\n#undef N\nint a[N];")
    assert "int a[N];" in res.text


def test_macro_expansion_is_token_based():
    # NN must not be rewritten when N is defined
    res = preprocess("#define N 4\nint NN;")
    assert "int NN;" in res.text


def test_nested_macro_expansion():
    res = preprocess("#define A B\n#define B 7\nint x = A;")
    assert "int x = 7;" in res.text


def test_ifdef_taken_branch():
    res = preprocess("#define X\n#ifdef X\nint a;\n#endif\nint b;")
    assert "int a;" in res.text
    assert "int b;" in res.text


def test_ifdef_skipped_branch_blanked():
    res = preprocess("#ifdef X\nint a;\n#endif")
    assert "int a;" not in res.text


def test_line_numbers_preserved_through_disabled_regions():
    src = "#ifdef X\nskip1\nskip2\n#endif\nlast"
    res = preprocess(src)
    assert res.text.split("\n")[4] == "last"
    assert len(res.text.split("\n")) == len(src.split("\n"))


def test_ifndef():
    res = preprocess("#ifndef X\nint a;\n#endif")
    assert "int a;" in res.text


def test_else_branch():
    res = preprocess("#ifdef X\nint a;\n#else\nint b;\n#endif")
    assert "int a;" not in res.text
    assert "int b;" in res.text


def test_elif_chain():
    src = "#define V 2\n#if V == 1\nint a;\n#elif V == 2\nint b;\n#else\nint c;\n#endif"
    res = preprocess(src)
    assert "int b;" in res.text
    assert "int a;" not in res.text
    assert "int c;" not in res.text


def test_if_defined_function_form():
    res = preprocess("#define X\n#if defined(X)\nint a;\n#endif")
    assert "int a;" in res.text


def test_nested_conditionals():
    src = "#define A\n#ifdef A\n#ifdef B\nint x;\n#endif\nint y;\n#endif"
    res = preprocess(src)
    assert "int x;" not in res.text
    assert "int y;" in res.text


def test_disabled_outer_disables_inner_define():
    src = "#ifdef NO\n#define N 9\n#endif\nint a[N];"
    res = preprocess(src)
    assert "int a[N];" in res.text


def test_include_known_header_recorded():
    res = preprocess('#include "co.h"')
    assert "co.h" in res.included


def test_include_unknown_header_rejected():
    with pytest.raises(PreprocessorError):
        preprocess('#include "windows.h"')


def test_known_headers_cover_dialect():
    assert "co.h" in KNOWN_HEADERS
    assert "assert.h" in KNOWN_HEADERS


def test_unterminated_conditional_rejected():
    with pytest.raises(PreprocessorError):
        preprocess("#ifdef X\nint a;")


def test_endif_without_if_rejected():
    with pytest.raises(PreprocessorError):
        preprocess("#endif")


def test_else_after_else_rejected():
    with pytest.raises(PreprocessorError):
        preprocess("#ifdef A\n#else\n#else\n#endif")


def test_function_like_macro_rejected():
    with pytest.raises(PreprocessorError):
        preprocess("#define F(x) ((x)+1)")


def test_ndebug_nabort_properties():
    res = preprocess("code", defines={"NDEBUG": ""})
    assert res.ndebug and not res.nabort
    res = preprocess("code", defines={"NABORT": ""})
    assert res.nabort and not res.ndebug


def test_predefines_visible_to_conditionals():
    res = preprocess("#ifdef NDEBUG\nint a;\n#endif", defines={"NDEBUG": ""})
    assert "int a;" in res.text


def test_pragma_lines_pass_through():
    res = preprocess("#pragma CO PIPELINE\nwhile (1) {}")
    assert "#pragma CO PIPELINE" in res.text


def test_unsupported_directive_rejected():
    with pytest.raises(PreprocessorError):
        preprocess("#error nope")


def test_line_comments_stripped():
    res = preprocess("int a; // trailing comment\nint b;")
    assert "comment" not in res.text
    assert "int a;" in res.text and "int b;" in res.text


def test_block_comments_stripped_preserving_lines():
    src = "int a; /* one\ntwo\nthree */ int b;\nint c;"
    res = preprocess(src)
    lines = res.text.split("\n")
    assert len(lines) == 4
    assert "int b;" in lines[2]
    assert "int c;" in lines[3]


def test_comment_containing_directive_ignored():
    res = preprocess("// #define N 9\nint a[4];")
    assert "N" not in res.defines
