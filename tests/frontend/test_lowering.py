"""Unit tests for AST -> IR lowering, checked by executing the IR."""

import pytest

from repro.errors import LoweringError
from repro.ir.ops import OpKind
from repro.ir.verify import verify_function
from tests.helpers import interp_outputs, lower_one


def run_expr(expr: str, decls: str = "", setup: str = "") -> int:
    src = f"""
void f(co_stream output) {{
  {decls}
  {setup}
  co_stream_write(output, {expr});
}}
"""
    func = lower_one(src)
    verify_function(func)
    _, outs = interp_outputs(func)
    return outs["output"][0]


def test_arithmetic_precedence():
    assert run_expr("2 + 3 * 4") == 14
    assert run_expr("(2 + 3) * 4") == 20


def test_division_and_modulo():
    assert run_expr("17 / 5") == 3
    assert run_expr("17 % 5") == 2


def test_signed_division_truncates_toward_zero():
    v = run_expr("a / 2", decls="int32 a;", setup="a = -7;")
    assert v == (-3) & 0xFFFFFFFFFFFFFFFF & ((1 << 64) - 1) or v == 0xFFFFFFFD


def test_bitwise_operators():
    assert run_expr("(12 & 10) | (1 ^ 3)") == 10


def test_shifts():
    assert run_expr("1 << 10") == 1024
    assert run_expr("1024 >> 3") == 128


def test_comparisons_produce_bool():
    assert run_expr("5 > 3") == 1
    assert run_expr("5 < 3") == 0
    assert run_expr("(5 >= 5) + (4 <= 3)") == 1


def test_logical_and_or_not():
    assert run_expr("(1 && 0) | (0 || 1)") == 1
    assert run_expr("!7") == 0
    assert run_expr("!0") == 1


def test_ternary_operator():
    assert run_expr("a > 2 ? 10 : 20", decls="uint32 a;", setup="a = 5;") == 10
    assert run_expr("a > 2 ? 10 : 20", decls="uint32 a;", setup="a = 1;") == 20


def test_cast_truncates():
    assert run_expr("(uint8)300") == 44


def test_cast_sign_extends():
    v = run_expr("(int32)a", decls="int8 a;", setup="a = -1;")
    assert v == 0xFFFFFFFF


def test_char_constant():
    assert run_expr("'A'") == 65


def test_hex_constant():
    assert run_expr("0xFF00 >> 8") == 0xFF


def test_compound_assignment_ops():
    src = """
void f(co_stream output) {
  uint32 a;
  a = 10;
  a += 5; a -= 2; a *= 3; a /= 2; a %= 11; a <<= 2; a >>= 1; a |= 64; a &= 127; a ^= 3;
  co_stream_write(output, a);
}
"""
    func = lower_one(src)
    _, outs = interp_outputs(func)
    a = 10
    a += 5; a -= 2; a *= 3; a //= 2; a %= 11; a <<= 2; a >>= 1; a |= 64; a &= 127; a ^= 3
    assert outs["output"][0] == a


def test_increment_decrement_statements():
    src = """
void f(co_stream output) {
  uint32 a;
  a = 5;
  a++;
  ++a;
  a--;
  co_stream_write(output, a);
}
"""
    _, outs = interp_outputs(lower_one(src))
    assert outs["output"][0] == 6


def test_if_else_control_flow():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    if (x > 10) { co_stream_write(output, 1); }
    else if (x > 5) { co_stream_write(output, 2); }
    else { co_stream_write(output, 3); }
  }
}
"""
    _, outs = interp_outputs(lower_one(src), {"input": [20, 7, 1]})
    assert outs["output"] == [1, 2, 3]


def test_for_loop_with_break_continue():
    src = """
void f(co_stream output) {
  uint32 i;
  uint32 acc;
  acc = 0;
  for (i = 0; i < 100; i++) {
    if (i == 7) { break; }
    if (i % 2 == 0) { continue; }
    acc += i;
  }
  co_stream_write(output, acc);
}
"""
    _, outs = interp_outputs(lower_one(src))
    assert outs["output"][0] == 1 + 3 + 5


def test_do_while_executes_at_least_once():
    src = """
void f(co_stream output) {
  uint32 i;
  i = 100;
  do { i = i + 1; } while (i < 5);
  co_stream_write(output, i);
}
"""
    _, outs = interp_outputs(lower_one(src))
    assert outs["output"][0] == 101


def test_array_declaration_and_access():
    src = """
void f(co_stream output) {
  uint16 a[4] = {10, 20, 30};
  a[3] = a[0] + a[1];
  co_stream_write(output, a[3] + a[2]);
}
"""
    _, outs = interp_outputs(lower_one(src))
    assert outs["output"][0] == 60


def test_const_array_store_rejected():
    src = """
void f(co_stream output) {
  const uint8 rom[2] = {1, 2};
  rom[0] = 5;
}
"""
    with pytest.raises(LoweringError):
        lower_one(src)


def test_array_size_from_initializer():
    src = "void f(co_stream o) { uint8 a[] = {1,2,3}; co_stream_write(o, a[2]); }"
    func = lower_one(src)
    assert func.arrays["a"].size == 3


def test_too_many_initializers_rejected():
    with pytest.raises(LoweringError):
        lower_one("void f(co_stream o) { uint8 a[2] = {1,2,3}; }")


def test_assert_records_site_metadata():
    src = '#include "co.h"\nvoid f(co_stream o) {\n  uint32 x;\n  x = 1;\n  assert(x > 0);\n}\n'
    func = lower_one(src, filename="meta.c")
    assert len(func.assertion_sites) == 1
    site = func.assertion_sites[0]
    assert site.file == "meta.c"
    assert site.line == 5
    assert site.function == "f"
    assert site.expr_text == "x > 0"
    assert "meta.c" in site.message() and "line 5" in site.message()


def test_ndebug_strips_assert_but_keeps_site():
    src = "void f(co_stream o) { uint32 x; x = 0; assert(x > 0); co_stream_write(o, x); }"
    func = lower_one(src, defines={"NDEBUG": ""})
    assert len(func.assertion_sites) == 1
    assert func.count_ops(OpKind.ASSERT_CHECK) == 0
    result, outs = interp_outputs(func)
    assert result.returned and outs["o"] == [0]


def test_stream_read_requires_address_of_scalar():
    with pytest.raises(LoweringError):
        lower_one("void f(co_stream s) { uint32 x; co_stream_read(s, x); }")


def test_unknown_function_call_rejected():
    with pytest.raises(LoweringError):
        lower_one("void f(co_stream s) { printf(1); }")


def test_undeclared_variable_rejected():
    with pytest.raises(LoweringError):
        lower_one("void f(co_stream s) { x = 1; }")


def test_pipeline_pragma_marks_loop_header():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) { co_stream_write(output, x); }
}
"""
    func = lower_one(src)
    assert any(b.pipeline for b in func.blocks.values())


def test_pragma_applies_only_to_next_loop():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  uint32 i;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) { co_stream_write(output, x); }
  for (i = 0; i < 3; i++) { co_stream_write(output, i); }
}
"""
    func = lower_one(src)
    pipelined = [b.name for b in func.blocks.values() if b.pipeline]
    assert len(pipelined) == 1


def test_sizeof_type_and_expression():
    assert run_expr("sizeof(uint32)") == 4
    assert run_expr("sizeof(a)", decls="uint64 a;") == 8


def test_ext_hdl_intrinsic_lowered():
    func = lower_one("void f(co_stream o) { co_stream_write(o, ext_hdl(5)); }")
    assert func.count_ops(OpKind.EXT_HDL) == 1


def test_user_variable_named_like_compiler_temp():
    # regression: temps must never collide with user names like c0/t0/s0
    src = """
void f(co_stream output) {
  uint32 c0;
  uint32 t0;
  uint32 s0;
  c0 = 3;
  t0 = c0 > 1 ? 7 : 9;
  s0 = t0 + (c0 > 2);
  co_stream_write(output, s0);
}
"""
    _, outs = interp_outputs(lower_one(src))
    assert outs["output"][0] == 8


def test_unsigned_wraparound_semantics():
    assert run_expr("a - 5", decls="uint32 a;", setup="a = 2;") == (2 - 5) % 2**32


def test_narrow_type_truncates_on_assignment():
    v = run_expr("a", decls="uint5 a;", setup="a = 40;")
    assert v == 40 % 32
