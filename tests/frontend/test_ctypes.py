"""Unit tests for the C type system."""

import pytest

from repro.errors import TypeError_
from repro.frontend import ctypes_
from repro.frontend.ctypes_ import CType, common_type, explicit_width_type, lookup_type


def test_builtin_widths():
    assert lookup_type("int") == CType(32, True)
    assert lookup_type("unsigned int") == CType(32, False)
    assert lookup_type("char") == CType(8, True)
    assert lookup_type("long long") == CType(64, True)
    assert lookup_type("unsigned long long") == CType(64, False)
    assert lookup_type("_Bool") == CType(1, False)


def test_explicit_width_names():
    assert lookup_type("uint5") == CType(5, False)
    assert lookup_type("int48") == CType(48, True)
    assert explicit_width_type("uint64") == CType(64, False)
    assert explicit_width_type("notatype") is None


def test_zero_and_oversize_widths_rejected():
    with pytest.raises(TypeError_):
        lookup_type("uint0")
    with pytest.raises(TypeError_):
        lookup_type("int65")


def test_unknown_type_rejected():
    with pytest.raises(TypeError_):
        lookup_type("float")  # no floating point in the synthesizable dialect


def test_ctype_name_round_trip():
    t = CType(17, False)
    assert t.name == "uint17"
    assert lookup_type(t.name) == t


def test_common_type_promotes_to_int():
    a = CType(8, False)
    b = CType(5, False)
    assert common_type(a, b).width == 32


def test_common_type_wider_wins():
    assert common_type(ctypes_.U64, ctypes_.I32).width == 64
    assert common_type(ctypes_.U64, ctypes_.I32).signed is False


def test_common_type_unsigned_wins_at_equal_width():
    assert common_type(ctypes_.U32, ctypes_.I32).signed is False
    assert common_type(ctypes_.I32, ctypes_.I32).signed is True


def test_common_type_u64_signedness():
    assert common_type(ctypes_.U64, ctypes_.I64).signed is False
    assert common_type(ctypes_.I64, ctypes_.I64).signed is True


def test_dialect_typedef_names_complete():
    names = ctypes_.all_dialect_typedef_names()
    assert "uint1" in names and "int64" in names
    assert len(names) == 128


def test_invalid_width_constructor():
    with pytest.raises(TypeError_):
        CType(0, True)
    with pytest.raises(TypeError_):
        CType(100, False)
