"""Unit tests for the pycparser wrapper."""

import pytest

from repro.errors import ParseError
from repro.frontend.parser import parse_source


def test_parses_stream_process():
    src = """
void p(co_stream a, co_stream b) {
  uint32 x;
  while (co_stream_read(a, &x)) { co_stream_write(b, x); }
}
"""
    parsed = parse_source(src)
    assert list(parsed.functions) == ["p"]


def test_line_numbers_refer_to_user_source():
    src = "#include \"co.h\"\nvoid f(co_stream s) {\n  co_stream_close(s);\n}\n"
    parsed = parse_source(src, filename="user.c")
    fd = parsed.functions["f"]
    assert fd.decl.coord.file == "user.c"
    assert fd.decl.coord.line == 2


def test_explicit_width_types_parse():
    src = "void f(co_stream s) { uint5 a; int33 b; a = 1; b = 2; co_stream_write(s, a + b); }"
    parsed = parse_source(src)
    assert "f" in parsed.functions


def test_syntax_error_raises_parse_error():
    with pytest.raises(ParseError):
        parse_source("void f( { }")


def test_duplicate_function_rejected():
    src = "void f(co_stream s) {}\nvoid f(co_stream s) {}"
    with pytest.raises(ParseError):
        parse_source(src)


def test_multiple_functions_collected():
    src = "void a(co_stream s) {}\nvoid b(co_stream s) {}"
    parsed = parse_source(src)
    assert sorted(parsed.functions) == ["a", "b"]


def test_ndebug_flag_from_defines():
    parsed = parse_source("void f(co_stream s) {}", defines={"NDEBUG": ""})
    assert parsed.ndebug


def test_assert_parses_as_call():
    src = "void f(co_stream s) { uint32 x; x = 1; assert(x > 0); }"
    parsed = parse_source(src)
    assert "f" in parsed.functions


def test_pragma_preserved_in_ast():
    src = """
void f(co_stream s) {
  uint32 x;
  x = 0;
  #pragma CO PIPELINE
  while (x < 4) { x = x + 1; }
}
"""
    parsed = parse_source(src)
    assert "f" in parsed.functions
