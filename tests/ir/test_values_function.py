"""Unit tests for IR values, functions and cloning."""

import pytest

from repro.errors import IRError
from repro.frontend.ctypes_ import U8, U32
from repro.ir.function import IRFunction
from repro.ir.instr import AssertionSite, Instr, Return
from repro.ir.ops import OpKind
from repro.ir.values import ArrayDecl, Const, Temp
from tests.helpers import interp_outputs, lower_one


def test_const_truncates_to_width():
    c = Const(300, U8)
    assert c.value == 44


def test_temp_identity_by_name_and_type():
    assert Temp("a", U32) == Temp("a", U32)
    assert Temp("a", U32) != Temp("a", U8)


def test_array_decl_bits():
    arr = ArrayDecl("a", U8, 16)
    assert arr.bits == 128


def test_declare_scalar_rejects_redeclaration():
    f = IRFunction(name="t")
    f.declare_scalar("a", U32)
    with pytest.raises(IRError):
        f.declare_scalar("a", U8)
    with pytest.raises(IRError):
        f.declare_array("a", U8, 4)


def test_new_temp_avoids_user_names():
    f = IRFunction(name="t")
    f.declare_scalar("t0", U32)
    f.declare_scalar("t1", U32)
    fresh = f.new_temp(U32, "t")
    assert fresh.name not in ("t0", "t1")


def test_assertion_site_message_format():
    site = AssertionSite(0, "app.c", 42, "proc", "x < 10")
    msg = site.message()
    assert msg == "Assertion failed: x < 10, file app.c, line 42, function proc"


def test_clone_is_deep_for_instructions():
    src = """
void f(co_stream o) {
  uint32 a;
  a = 1;
  co_stream_write(o, a);
}
"""
    func = lower_one(src)
    clone = func.clone()
    clone.blocks[clone.entry].instrs[0].args[0] = Const(99, U32)
    _, outs = interp_outputs(func)
    assert outs["o"] == [1]  # original untouched
    _, outs2 = interp_outputs(clone)
    assert outs2["o"] == [99]


def test_clone_preserves_structure():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  uint8 rom[2] = {3, 4};
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) { co_stream_write(output, rom[x & 1]); }
}
"""
    func = lower_one(src)
    clone = func.clone()
    assert clone.stream_names() == func.stream_names()
    assert clone.arrays.keys() == func.arrays.keys()
    assert [b.pipeline for b in clone.blocks.values()] == [
        b.pipeline for b in func.blocks.values()
    ]


def test_count_ops_and_array_accesses():
    src = """
void f(co_stream o) {
  uint8 a[4];
  a[0] = 1;
  a[1] = 2;
  co_stream_write(o, a[0]);
}
"""
    func = lower_one(src)
    assert func.count_ops(OpKind.STORE) == 2
    assert func.count_ops(OpKind.LOAD) == 1
    assert len(func.array_accesses("a")) == 3


def test_instr_copy_is_shallow_but_independent():
    i = Instr(OpKind.MOV, [Temp("a", U32)], [Const(1, U32)], {"coord": ("f", 1)})
    j = i.copy()
    j.attrs["coord"] = ("g", 2)
    assert i.attrs["coord"] == ("f", 1)


def test_stream_lookup():
    func = lower_one("void f(co_stream s) { co_stream_close(s); }")
    assert func.stream("s").name == "s"
    with pytest.raises(IRError):
        func.stream("nope")


def test_block_order_is_layout_order():
    f = IRFunction(name="t")
    b1 = f.new_block("x")
    b2 = f.new_block("y")
    b1.term = Return()
    b2.term = Return()
    assert [b.name for b in f.block_order()] == [b1.name, b2.name]
