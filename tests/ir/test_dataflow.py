"""Unit tests for liveness, def-use and condition support."""

from repro.ir.dataflow import condition_support, def_use, liveness
from repro.ir.ops import OpKind
from tests.helpers import lower_one

SRC = """
void f(co_stream input, co_stream output) {
  uint32 x;
  uint32 acc;
  acc = 0;
  while (co_stream_read(input, &x)) {
    acc = acc + x;
    co_stream_write(output, acc);
  }
  co_stream_close(output);
}
"""


def test_liveness_loop_carried_value_live_at_header():
    func = lower_one(SRC)
    live = liveness(func)
    header = next(n for n in func.blocks if n.startswith("while"))
    assert "acc" in live.live_in[header]


def test_liveness_dead_after_last_use():
    func = lower_one(SRC)
    live = liveness(func)
    exit_block = next(n for n in func.blocks if n.startswith("exit"))
    assert "x" not in live.live_out[exit_block]


def test_def_use_records_sites():
    func = lower_one(SRC)
    du = def_use(func)
    assert len(du.defs["acc"]) == 2  # init + loop update
    assert len(du.uses["x"]) >= 1


def test_branch_cond_use_recorded_as_terminator():
    func = lower_one(SRC)
    du = def_use(func)
    ok_name = next(n for n in func.scalars if n.startswith("ok"))
    assert any(idx == -1 for _b, idx in du.uses[ok_name])


def test_condition_support_scalar():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x * 2 + 1 < 100);
    co_stream_write(output, x);
  }
}
"""
    func = lower_one(src)
    bname, idx = next(
        (b, i)
        for b, blk in func.blocks.items()
        for i, ins in enumerate(blk.instrs)
        if ins.op == OpKind.ASSERT_CHECK
    )
    root = func.blocks[bname].instrs[idx].args[0]
    support = condition_support(func, bname, root)
    assert support == {"x"}


def test_condition_support_stops_at_loads():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  uint32 buf[8];
  while (co_stream_read(input, &x)) {
    buf[x & 7] = x;
    assert(buf[x & 7] < 100);
    co_stream_write(output, x);
  }
}
"""
    func = lower_one(src)
    bname, idx = next(
        (b, i)
        for b, blk in func.blocks.items()
        for i, ins in enumerate(blk.instrs)
        if ins.op == OpKind.ASSERT_CHECK
    )
    root = func.blocks[bname].instrs[idx].args[0]
    support = condition_support(func, bname, root)
    # the loaded value must be tapped, not the address computation
    assert len(support) == 1
    (name,) = support
    assert name.startswith("ld")
