"""Unit tests for shared utilities (tables, id generation, fingerprints)."""

from repro.utils.idgen import IdGenerator, stable_fingerprint
from repro.utils.tables import delta, pct, render_table


def test_idgen_monotone_per_prefix():
    g = IdGenerator()
    assert [g.next("t"), g.next("t"), g.next("x"), g.next("t")] == [
        "t0", "t1", "x0", "t2"
    ]


def test_idgen_reserved_names_are_never_reissued():
    # Regression: reserve() used to return the name without recording it,
    # so a later next() with the same prefix could collide.
    g = IdGenerator()
    assert g.reserve("st1") == "st1"
    issued = [g.next("st") for _ in range(3)]
    assert "st1" not in issued
    assert issued == ["st0", "st2", "st3"]
    assert len(set(issued)) == len(issued)


def test_idgen_reserve_after_next_still_unique():
    g = IdGenerator()
    first = g.next("n")
    g.reserve("n1")
    g.reserve("n2")
    rest = [g.next("n") for _ in range(2)]
    names = [first, "n1", "n2", *rest]
    assert len(set(names)) == len(names)


def test_fingerprint_stable_and_sensitive():
    a = stable_fingerprint("design", 42, ["x"])
    b = stable_fingerprint("design", 42, ["x"])
    c = stable_fingerprint("design", 43, ["x"])
    assert a == b
    assert a != c
    assert 0 <= a < 2**64


def test_fingerprint_resists_concatenation_ambiguity():
    assert stable_fingerprint("ab", "c") != stable_fingerprint("a", "bc")


def test_render_table_alignment():
    text = render_table(["name", "value"], [["a", 1], ["bbbb", 22]])
    lines = text.split("\n")
    assert lines[0].startswith("name")
    assert lines[2].endswith("1")
    assert lines[3].endswith("22")


def test_render_table_title_and_separator():
    text = render_table(["h"], [["x"]], title="TITLE")
    assert text.startswith("TITLE\n=")


def test_pct_and_delta_formats():
    assert pct(1, 200) == "0.50%"
    assert pct(1, 0) == "n/a"
    assert delta(110, 100) == "+10 (+10.00%)"
    assert delta(90, 100).startswith("-10")


def test_render_table_ragged_rows_padded():
    text = render_table(["a", "b", "c"], [["x"], ["y", 1, 2]])
    assert "x" in text and "2" in text
