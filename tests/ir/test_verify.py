"""Unit tests for the IR verifier."""

import pytest

from repro.errors import IRError
from repro.frontend.ctypes_ import U1, U32
from repro.ir.function import IRFunction
from repro.ir.instr import BasicBlock, Branch, Instr, Jump, Return
from repro.ir.ops import OpKind
from repro.ir.values import Const, StreamParam, Temp
from repro.ir.verify import verify_function
from tests.helpers import lower_one


def minimal_func() -> IRFunction:
    f = IRFunction(name="t")
    b = BasicBlock("entry")
    b.term = Return()
    f.blocks["entry"] = b
    f.entry = "entry"
    return f


def test_lowered_functions_verify():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  uint8 buf[4];
  while (co_stream_read(input, &x)) {
    buf[x & 3] = x;
    assert(buf[x & 3] > 0);
    co_stream_write(output, x);
  }
  co_stream_close(output);
}
"""
    verify_function(lower_one(src))


def test_missing_terminator_rejected():
    f = minimal_func()
    f.blocks["entry"].term = None
    with pytest.raises(IRError):
        verify_function(f)


def test_unknown_branch_target_rejected():
    f = minimal_func()
    t = f.declare_scalar("c", U1)
    f.blocks["entry"].term = Branch(t, "nowhere", "entry")
    with pytest.raises(IRError):
        verify_function(f)


def test_missing_entry_rejected():
    f = minimal_func()
    f.entry = "nope"
    with pytest.raises(IRError):
        verify_function(f)


def test_undeclared_temp_rejected():
    f = minimal_func()
    ghost = Temp("ghost", U32)
    f.blocks["entry"].instrs.append(Instr(OpKind.MOV, [ghost], [Const(1, U32)]))
    with pytest.raises(IRError):
        verify_function(f)


def test_type_mismatch_rejected():
    f = minimal_func()
    f.declare_scalar("a", U32)
    wrong = Temp("a", U1)  # declared U32 but used as U1
    f.blocks["entry"].instrs.append(Instr(OpKind.MOV, [wrong], [Const(0, U1)]))
    with pytest.raises(IRError):
        verify_function(f)


def test_bad_arity_rejected():
    f = minimal_func()
    a = f.declare_scalar("a", U32)
    f.scalars["a"] = U32
    f.blocks["entry"].instrs.append(Instr(OpKind.ADD, [a], [Const(1, U32)]))
    with pytest.raises(IRError):
        verify_function(f)


def test_unknown_array_rejected():
    f = minimal_func()
    a = f.declare_scalar("a", U32)
    f.blocks["entry"].instrs.append(
        Instr(OpKind.LOAD, [a], [Const(0, U32)], {"array": "nope"})
    )
    with pytest.raises(IRError):
        verify_function(f)


def test_unknown_stream_rejected():
    f = minimal_func()
    f.blocks["entry"].instrs.append(
        Instr(OpKind.STREAM_WRITE, [], [Const(0, U32)], {"stream": "nope"})
    )
    with pytest.raises(IRError):
        verify_function(f)


def test_stream_read_needs_two_dests():
    f = minimal_func()
    f.streams.append(StreamParam("s"))
    ok = f.declare_scalar("ok", U1)
    f.blocks["entry"].instrs.append(
        Instr(OpKind.STREAM_READ, [ok], [], {"stream": "s"})
    )
    with pytest.raises(IRError):
        verify_function(f)


def test_assert_check_requires_site():
    f = minimal_func()
    c = f.declare_scalar("c", U1)
    f.blocks["entry"].instrs.append(Instr(OpKind.ASSERT_CHECK, [], [c], {}))
    with pytest.raises(IRError):
        verify_function(f)


def test_tap_requires_channel():
    f = minimal_func()
    c = f.declare_scalar("c", U1)
    f.blocks["entry"].instrs.append(Instr(OpKind.TAP, [], [c], {}))
    with pytest.raises(IRError):
        verify_function(f)


def test_jump_to_existing_block_ok():
    f = minimal_func()
    b2 = f.new_block("b")
    b2.term = Return()
    f.blocks["entry"].term = Jump(b2.name)
    verify_function(f)
