"""Unit tests for the IR interpreter (software-simulation semantics)."""

import pytest

from repro.errors import SimulationError
from repro.ir.interp import Interp, run_to_completion
from tests.helpers import interp_outputs, lower_one


def test_stream_loop_runs_to_eos():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) { co_stream_write(output, x + 1); }
  co_stream_close(output);
}
"""
    result, outs = interp_outputs(lower_one(src), {"input": [1, 2, 3]})
    assert result.returned
    assert outs["output"] == [2, 3, 4]


def test_read_after_eos_returns_zero_ok():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  uint32 ok;
  ok = co_stream_read(input, &x);
  co_stream_write(output, ok);
  ok = co_stream_read(input, &x);
  co_stream_write(output, ok);
}
"""
    _, outs = interp_outputs(lower_one(src), {"input": [9]})
    assert outs["output"] == [1, 0]


def test_assert_abort_stops_process():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x < 10);
    co_stream_write(output, x);
  }
}
"""
    result, outs = interp_outputs(lower_one(src), {"input": [1, 50, 3]})
    assert not result.returned
    assert result.aborted_by is not None
    assert outs["output"] == [1]


def test_assert_nabort_continues():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x < 10);
    co_stream_write(output, x);
  }
}
"""
    result, outs = interp_outputs(lower_one(src), {"input": [1, 50, 3]},
                                  nabort=True)
    assert result.returned
    assert len(result.assert_failures) == 1
    assert outs["output"] == [1, 50, 3]


def test_out_of_bounds_read_raises():
    src = "void f(co_stream o) { uint8 a[4]; uint32 i; i = 9; co_stream_write(o, a[i]); }"
    with pytest.raises(SimulationError):
        interp_outputs(lower_one(src))


def test_out_of_bounds_write_raises():
    src = "void f(co_stream o) { uint8 a[4]; uint32 i; i = 4; a[i] = 1; }"
    with pytest.raises(SimulationError):
        interp_outputs(lower_one(src))


def test_division_by_zero_raises():
    src = "void f(co_stream o) { uint32 a; a = 0; co_stream_write(o, 5 / a); }"
    with pytest.raises(SimulationError):
        interp_outputs(lower_one(src))


def test_step_limit_detects_runaway_loop():
    src = "void f(co_stream o) { uint32 x; x = 1; while (x) { x = 1; } }"
    with pytest.raises(SimulationError):
        interp_outputs(lower_one(src), max_steps=1000)


def test_array_initializer_respected():
    src = "void f(co_stream o) { uint8 a[4] = {7, 8}; co_stream_write(o, a[0] + a[1] + a[2]); }"
    _, outs = interp_outputs(lower_one(src))
    assert outs["o"] == [15]


def test_ext_hdl_callback():
    src = "void f(co_stream o) { co_stream_write(o, ext_hdl(10)); }"
    _, outs = interp_outputs(lower_one(src),
                             ext_funcs={"ext_hdl": lambda v: v * 3})
    assert outs["o"] == [30]


def test_ext_hdl_defaults_to_identity():
    src = "void f(co_stream o) { co_stream_write(o, ext_hdl(10)); }"
    _, outs = interp_outputs(lower_one(src))
    assert outs["o"] == [10]


def test_signed_comparison_uses_sign():
    src = """
void f(co_stream o) {
  int32 a;
  a = -1;
  co_stream_write(o, a < 0);
  co_stream_write(o, a > 100);
}
"""
    _, outs = interp_outputs(lower_one(src))
    assert outs["o"] == [1, 0]


def test_unsigned_comparison_treats_as_large():
    src = """
void f(co_stream o) {
  uint32 a;
  a = 0 - 1;
  co_stream_write(o, a > 100);
}
"""
    _, outs = interp_outputs(lower_one(src))
    assert outs["o"] == [1]


def test_64bit_comparison_is_exact():
    # the paper's Figure 3 comparison: false in correct C semantics
    src = """
void f(co_stream o) {
  uint64 c1;
  uint64 c2;
  c1 = 4294967296;
  c2 = 4294967286;
  co_stream_write(o, c2 > c1);
}
"""
    _, outs = interp_outputs(lower_one(src))
    assert outs["o"] == [0]


def test_generator_protocol_read_reply():
    func = lower_one(
        "void f(co_stream s, co_stream o) { uint32 x; co_stream_read(s, &x);"
        " co_stream_write(o, x * 2); }"
    )
    gen = Interp(func).run()
    event = next(gen)
    assert event == ("read", "s")
    event = gen.send((1, 21))
    assert event[0] == "write" and event[2] == 42


def test_run_to_completion_collects_multiple_streams():
    src = """
void f(co_stream a, co_stream b) {
  co_stream_write(a, 1);
  co_stream_write(b, 2);
  co_stream_close(a);
  co_stream_close(b);
}
"""
    result, outs = run_to_completion(lower_one(src), {})
    assert outs["a"] == [1] and outs["b"] == [2]
    assert result.returned
