"""Unit tests for CFG construction and loop analysis."""

from repro.ir.cfg import CFG
from tests.helpers import lower_one

LOOP_SRC = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    if (x > 2) { co_stream_write(output, x); }
  }
  co_stream_close(output);
}
"""


def test_successors_and_predecessors():
    func = lower_one(LOOP_SRC)
    cfg = CFG.build(func)
    entry_succs = cfg.successors(func.entry)
    assert len(entry_succs) == 1
    header = entry_succs[0]
    assert len(cfg.successors(header)) == 2
    assert func.entry in cfg.predecessors(header)


def test_reverse_postorder_starts_at_entry():
    func = lower_one(LOOP_SRC)
    cfg = CFG.build(func)
    order = cfg.reverse_postorder()
    assert order[0] == func.entry
    assert set(order) == cfg.reachable()


def test_natural_loop_detection():
    func = lower_one(LOOP_SRC)
    cfg = CFG.build(func)
    loops = cfg.natural_loops()
    assert len(loops) == 1
    loop = loops[0]
    assert loop.header in loop.body
    assert len(loop.body) >= 2


def test_nested_loops_found():
    src = """
void f(co_stream o) {
  uint32 i; uint32 j; uint32 acc;
  acc = 0;
  for (i = 0; i < 3; i++) {
    for (j = 0; j < 3; j++) { acc += i * j; }
  }
  co_stream_write(o, acc);
}
"""
    func = lower_one(src)
    loops = CFG.build(func).natural_loops()
    assert len(loops) == 2
    bodies = sorted(len(loop.body) for loop in loops)
    assert bodies[0] < bodies[1]  # inner nested in outer


def test_pipelined_loops_filtered_by_pragma():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  uint32 i;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) { co_stream_write(output, x); }
  for (i = 0; i < 4; i++) { co_stream_write(output, i); }
}
"""
    func = lower_one(src)
    cfg = CFG.build(func)
    assert len(cfg.natural_loops()) == 2
    assert len(cfg.pipelined_loops()) == 1


def test_dominates_entry_dominates_all():
    func = lower_one(LOOP_SRC)
    cfg = CFG.build(func)
    for name in cfg.reachable():
        assert cfg.dominates(func.entry, name)


def test_unreachable_block_excluded():
    func = lower_one(LOOP_SRC)
    dead = func.new_block("orphan")
    from repro.ir.instr import Return

    dead.term = Return()
    cfg = CFG.build(func)
    assert dead.name not in cfg.reachable()
