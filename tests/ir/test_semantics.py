"""Unit tests for the shared op semantics (used by both execution models)."""

import pytest

from repro.errors import SimulationError
from repro.frontend.ctypes_ import I8, I32, I64, U8, U32, U64, CType
from repro.ir import semantics
from repro.ir.ops import OpKind


def test_interpret_signed_and_unsigned():
    assert semantics.interpret(0xFF, U8) == 255
    assert semantics.interpret(0xFF, I8) == -1
    assert semantics.interpret(0x80, I8) == -128


def test_add_wraps_at_common_width():
    r = semantics.binop(OpKind.ADD, 0xFFFFFFFF, U32, 1, U32)
    assert r & 0xFFFFFFFF == 0


def test_sub_underflow_unsigned():
    r = semantics.binop(OpKind.SUB, 2, U32, 5, U32)
    assert r & 0xFFFFFFFF == (2 - 5) % 2**32


def test_mul_signed():
    r = semantics.binop(OpKind.MUL, (-3) & 0xFFFFFFFF, I32, 4, I32)
    assert r & 0xFFFFFFFF == (-12) % 2**32


def test_div_truncates_toward_zero():
    neg7 = (-7) & 0xFFFFFFFF
    assert semantics.binop(OpKind.DIV, neg7, I32, 2, I32) == -3
    assert semantics.binop(OpKind.MOD, neg7, I32, 2, I32) == -1
    assert semantics.binop(OpKind.DIV, 7, I32, (-2) & 0xFFFFFFFF, I32) == -3


def test_div_by_zero_raises():
    with pytest.raises(SimulationError):
        semantics.binop(OpKind.DIV, 1, U32, 0, U32)


def test_shift_semantics():
    assert semantics.binop(OpKind.SHL, 1, U32, 31, U32) == 1 << 31
    assert semantics.binop(OpKind.SHR, 0x80000000, U32, 4, U32) == 0x08000000
    # arithmetic shift for signed operands
    r = semantics.binop(OpKind.SHR, 0x80000000, I32, 4, I32)
    assert r == -0x8000000


def test_compare_usual_conversions():
    # int vs unsigned at same width: unsigned comparison
    assert semantics.compare(OpKind.LT, (-1) & 0xFFFFFFFF, I32, 5, U32) == 0
    # both signed: signed comparison
    assert semantics.compare(OpKind.LT, (-1) & 0xFFFFFFFF, I32, 5, I32) == 1


def test_compare_64bit_exact():
    assert semantics.compare(OpKind.GT, 4294967286, U64, 4294967296, U64) == 0


def test_compare_force_width_reproduces_paper_bug():
    # "The 64-bit comparison of 4294967286 > 4294967296 (false) becomes a
    # 5-bit comparison of 22 > 0 (true)"
    assert semantics.compare(
        OpKind.GT, 4294967286, U64, 4294967296, U64, force_width=5
    ) == 1
    assert 4294967286 % 32 == 22
    assert 4294967296 % 32 == 0


def test_unop_semantics():
    assert semantics.unop(OpKind.NEG, 5, U32) == -5
    assert semantics.unop(OpKind.NOT, 0, U8) & 0xFF == 0xFF
    assert semantics.unop(OpKind.LNOT, 0, U32) == 1
    assert semantics.unop(OpKind.LNOT, 3, U32) == 0


def test_cast_semantics():
    assert semantics.cast(OpKind.SEXT, 0x80, I8) & 0xFFFF == 0xFF80
    assert semantics.cast(OpKind.ZEXT, 0x80, U8) == 0x80
    assert semantics.cast(OpKind.TRUNC, 0x1FF, CType(9, False)) == 0x1FF


def test_narrow_width_ops():
    five = CType(5, False)
    r = semantics.binop(OpKind.ADD, 30, five, 5, five)
    # promoted to >=32 bits before adding: no wrap at 5 bits mid-expression
    assert r == 35


def test_i64_boundary_values():
    big = 2**63 - 1
    r = semantics.binop(OpKind.ADD, big, I64, 1, I64)
    assert r & (2**64 - 1) == 2**63
