"""Unit tests for DCE and block splitting."""

from repro.ir.instr import Branch, Jump
from repro.ir.ops import OpKind
from repro.ir.transform import eliminate_dead_code, split_block_at
from repro.ir.verify import verify_function
from tests.helpers import interp_outputs, lower_one


def test_dce_removes_unused_computation():
    src = """
void f(co_stream o) {
  uint32 a; uint32 b;
  a = 5;
  b = a * 7 + 2;
  co_stream_write(o, a);
}
"""
    func = lower_one(src)
    before = sum(1 for _ in func.instructions())
    removed = eliminate_dead_code(func)
    assert removed >= 2  # the mul, add and b's mov are dead
    after = sum(1 for _ in func.instructions())
    assert after == before - removed
    verify_function(func)
    _, outs = interp_outputs(func)
    assert outs["o"] == [5]


def test_dce_keeps_side_effects():
    src = """
void f(co_stream o) {
  uint32 a;
  uint8 buf[2];
  a = 1;
  buf[0] = a;
  co_stream_write(o, 9);
}
"""
    func = lower_one(src)
    eliminate_dead_code(func)
    assert func.count_ops(OpKind.STORE) == 1
    assert func.count_ops(OpKind.STREAM_WRITE) == 1


def test_dce_removes_dead_load_chains_transitively():
    src = """
void f(co_stream o) {
  uint32 a;
  uint8 buf[4] = {1, 2};
  a = buf[1] + buf[2];
  co_stream_write(o, 3);
}
"""
    func = lower_one(src)
    eliminate_dead_code(func)
    assert func.count_ops(OpKind.LOAD) == 0


def test_dce_keeps_branch_conditions():
    src = """
void f(co_stream o) {
  uint32 a;
  a = 3;
  if (a > 1) { co_stream_write(o, 1); }
}
"""
    func = lower_one(src)
    eliminate_dead_code(func)
    _, outs = interp_outputs(func)
    assert outs["o"] == [1]


def test_split_block_moves_tail_and_terminator():
    src = """
void f(co_stream o) {
  uint32 a;
  a = 1;
  a = a + 1;
  co_stream_write(o, a);
}
"""
    func = lower_one(src)
    entry = func.blocks[func.entry]
    n = len(entry.instrs)
    cont = split_block_at(func, func.entry, 1)
    assert len(entry.instrs) == 1
    assert len(cont.instrs) == n - 1
    assert isinstance(entry.term, Jump) and entry.term.target == cont.name
    verify_function(func)
    _, outs = interp_outputs(func)
    assert outs["o"] == [2]


def test_split_preserves_branch_terminator():
    src = """
void f(co_stream o) {
  uint32 a;
  a = 7;
  if (a > 3) { co_stream_write(o, 1); } else { co_stream_write(o, 2); }
}
"""
    func = lower_one(src)
    entry = func.blocks[func.entry]
    assert isinstance(entry.term, Branch)
    cont = split_block_at(func, func.entry, 1)
    assert isinstance(cont.term, Branch)
    assert isinstance(entry.term, Jump)
    _, outs = interp_outputs(func)
    assert outs["o"] == [1]
