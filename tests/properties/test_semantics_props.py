"""Property tests: IR op semantics agree with Python big-int arithmetic."""

from hypothesis import given, strategies as st

from repro.frontend.ctypes_ import CType
from repro.ir import semantics
from repro.ir.ops import OpKind
from repro.utils.bitops import sign_extend, truncate

widths = st.integers(min_value=1, max_value=64)


@st.composite
def typed_value(draw):
    w = draw(widths)
    signed = draw(st.booleans())
    v = draw(st.integers(min_value=0, max_value=(1 << w) - 1))
    return v, CType(w, signed)


def as_math(v, ty):
    return sign_extend(v, ty.width) if ty.signed else v


@given(typed_value(), typed_value())
def test_add_matches_python(a, b):
    (av, at), (bv, bt) = a, b
    from repro.frontend.ctypes_ import common_type

    ct = common_type(at, bt)
    r = semantics.binop(OpKind.ADD, av, at, bv, bt)
    expected = truncate(
        semantics.interpret(truncate(as_math(av, at), ct.width), ct)
        + semantics.interpret(truncate(as_math(bv, bt), ct.width), ct),
        ct.width,
    )
    assert truncate(r, ct.width) == expected


@given(typed_value(), typed_value())
def test_compare_antisymmetry(a, b):
    (av, at), (bv, bt) = a, b
    lt = semantics.compare(OpKind.LT, av, at, bv, bt)
    gt = semantics.compare(OpKind.GT, av, at, bv, bt)
    eq = semantics.compare(OpKind.EQ, av, at, bv, bt)
    assert lt + gt + eq == 1


@given(typed_value(), typed_value())
def test_compare_le_is_lt_or_eq(a, b):
    (av, at), (bv, bt) = a, b
    le = semantics.compare(OpKind.LE, av, at, bv, bt)
    lt = semantics.compare(OpKind.LT, av, at, bv, bt)
    eq = semantics.compare(OpKind.EQ, av, at, bv, bt)
    assert le == (lt or eq)


@given(typed_value(), typed_value(), st.integers(min_value=1, max_value=63))
def test_force_width_compare_only_sees_low_bits(a, b, fw):
    (av, at), (bv, bt) = a, b
    r = semantics.compare(OpKind.EQ, av, at, bv, bt, force_width=fw)
    assert r == int(
        truncate(as_math(av, at), fw) == truncate(as_math(bv, bt), fw)
    )


@given(typed_value())
def test_double_negation_identity(a):
    av, at = a
    r = semantics.unop(OpKind.NEG, truncate(semantics.unop(OpKind.NEG, av, at),
                                            at.width), at)
    assert truncate(r, at.width) == av


@given(typed_value())
def test_lnot_is_boolean(a):
    av, at = a
    r = semantics.unop(OpKind.LNOT, av, at)
    assert r == (0 if av else 1)


@given(typed_value(), typed_value())
def test_division_reconstruction(a, b):
    (av, at), (bv, bt) = a, b
    from repro.frontend.ctypes_ import common_type

    if truncate(bv, bt.width) == 0:
        return
    ct = common_type(at, bt)
    q = semantics.binop(OpKind.DIV, av, at, bv, bt)
    r = semantics.binop(OpKind.MOD, av, at, bv, bt)
    x = semantics.interpret(truncate(as_math(av, at), ct.width), ct)
    y = semantics.interpret(truncate(as_math(bv, bt), ct.width), ct)
    if y != 0:
        assert q * y + r == x
        assert abs(r) < abs(y)
