"""Property tests: IR op semantics agree with Python big-int arithmetic."""

from hypothesis import given, strategies as st

from repro.frontend.ctypes_ import CType
from repro.ir import semantics
from repro.ir.ops import OpKind
from repro.utils.bitops import sign_extend, truncate

widths = st.integers(min_value=1, max_value=64)


@st.composite
def typed_value(draw):
    w = draw(widths)
    signed = draw(st.booleans())
    v = draw(st.integers(min_value=0, max_value=(1 << w) - 1))
    return v, CType(w, signed)


def as_math(v, ty):
    return sign_extend(v, ty.width) if ty.signed else v


@given(typed_value(), typed_value())
def test_add_matches_python(a, b):
    (av, at), (bv, bt) = a, b
    from repro.frontend.ctypes_ import common_type

    ct = common_type(at, bt)
    r = semantics.binop(OpKind.ADD, av, at, bv, bt)
    expected = truncate(
        semantics.interpret(truncate(as_math(av, at), ct.width), ct)
        + semantics.interpret(truncate(as_math(bv, bt), ct.width), ct),
        ct.width,
    )
    assert truncate(r, ct.width) == expected


@given(typed_value(), typed_value())
def test_compare_antisymmetry(a, b):
    (av, at), (bv, bt) = a, b
    lt = semantics.compare(OpKind.LT, av, at, bv, bt)
    gt = semantics.compare(OpKind.GT, av, at, bv, bt)
    eq = semantics.compare(OpKind.EQ, av, at, bv, bt)
    assert lt + gt + eq == 1


@given(typed_value(), typed_value())
def test_compare_le_is_lt_or_eq(a, b):
    (av, at), (bv, bt) = a, b
    le = semantics.compare(OpKind.LE, av, at, bv, bt)
    lt = semantics.compare(OpKind.LT, av, at, bv, bt)
    eq = semantics.compare(OpKind.EQ, av, at, bv, bt)
    assert le == (lt or eq)


@given(typed_value(), typed_value(), st.integers(min_value=1, max_value=63))
def test_force_width_compare_only_sees_low_bits(a, b, fw):
    (av, at), (bv, bt) = a, b
    r = semantics.compare(OpKind.EQ, av, at, bv, bt, force_width=fw)
    assert r == int(
        truncate(as_math(av, at), fw) == truncate(as_math(bv, bt), fw)
    )


@given(typed_value())
def test_double_negation_identity(a):
    av, at = a
    r = semantics.unop(OpKind.NEG, truncate(semantics.unop(OpKind.NEG, av, at),
                                            at.width), at)
    assert truncate(r, at.width) == av


@given(typed_value())
def test_lnot_is_boolean(a):
    av, at = a
    r = semantics.unop(OpKind.LNOT, av, at)
    assert r == (0 if av else 1)


@given(typed_value(), typed_value())
def test_division_reconstruction(a, b):
    (av, at), (bv, bt) = a, b
    from repro.frontend.ctypes_ import common_type

    if truncate(bv, bt.width) == 0:
        return
    ct = common_type(at, bt)
    q = semantics.binop(OpKind.DIV, av, at, bv, bt)
    r = semantics.binop(OpKind.MOD, av, at, bv, bt)
    x = semantics.interpret(truncate(as_math(av, at), ct.width), ct)
    y = semantics.interpret(truncate(as_math(bv, bt), ct.width), ct)
    if y != 0:
        assert q * y + r == x
        assert abs(r) < abs(y)


# ---- C-reference properties (difftest satellite): binop/cast must match
# an independently written model of the C rules, not just reconstruct.


def _c_div(x, y):
    q = abs(x) // abs(y)
    return -q if (x < 0) != (y < 0) else q


@given(typed_value(), typed_value())
def test_div_mod_match_c_reference(a, b):
    (av, at), (bv, bt) = a, b
    from fractions import Fraction

    from repro.frontend.ctypes_ import common_type

    ct = common_type(at, bt)
    x = semantics.interpret(truncate(as_math(av, at), ct.width), ct)
    y = semantics.interpret(truncate(as_math(bv, bt), ct.width), ct)
    if y == 0:
        return
    q = semantics.binop(OpKind.DIV, av, at, bv, bt)
    r = semantics.binop(OpKind.MOD, av, at, bv, bt)
    assert q == _c_div(x, y)
    assert q == int(Fraction(x, y))  # trunc toward zero, independently
    assert r == x - _c_div(x, y) * y


@given(typed_value(), st.integers(min_value=0, max_value=63))
def test_shr_matches_c_reference(a, amt):
    av, at = a
    r = semantics.binop(OpKind.SHR, av, at, amt, CType(32, False))
    if at.signed:
        # arithmetic shift: floor division of the signed value
        assert r == sign_extend(av, at.width) >> amt
    else:
        assert r == av >> amt


@given(typed_value(), st.integers(min_value=0, max_value=63))
def test_shl_promotes_signed_operand(a, amt):
    # C promotes the left operand before shifting: a negative int16
    # shifts as its value, not as its 16-bit pattern (difftest seed 151)
    av, at = a
    r = semantics.binop(OpKind.SHL, av, at, amt, CType(32, False))
    assert r == as_math(av, at) << amt


@given(typed_value(), st.integers(min_value=1, max_value=64))
def test_zext_sext_match_c_reference(a, dw):
    av, at = a
    z = truncate(semantics.cast(OpKind.ZEXT, av, at), dw)
    s = truncate(semantics.cast(OpKind.SEXT, av, at), dw)
    assert z == truncate(av, min(at.width, dw)) or dw >= at.width
    assert z == truncate(truncate(av, at.width), dw)
    assert s == truncate(sign_extend(av, at.width), dw)
    if not (av >> (at.width - 1)) & 1:  # non-negative: both agree
        assert z == s


@given(typed_value())
def test_mov_trunc_normalize_at_source_width(a):
    av, at = a
    wide = av | (1 << 65)  # junk above the source width must be dropped
    assert semantics.cast(OpKind.MOV, wide, at) == truncate(wide, at.width)
    assert semantics.cast(OpKind.TRUNC, wide, at) == truncate(wide, at.width)
