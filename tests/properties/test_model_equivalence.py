"""Property tests: the three execution models agree on program behaviour.

Random straight-line-plus-loop programs in the dialect are run through:

* the IR interpreter (software-simulation semantics),
* the schedule-level cycle model (hardware timing semantics), and
* the RTL simulator (for non-pipelined programs),

and their stream outputs must be identical — the core soundness property
of the whole reproduction: *absent injected faults, hardware behaviour
equals source behaviour*, so any divergence an assertion catches is a real
injected bug, never a toolchain artifact.
"""

from hypothesis import given, settings, strategies as st

from repro.hls.cyclemodel import Channel
from repro.rtl.sim import RtlSim
from tests.helpers import compile_one, interp_outputs, lower_one, run_cycle_model

ops = st.sampled_from(["+", "-", "*", "^", "&", "|"])
small = st.integers(min_value=0, max_value=255)


@st.composite
def straightline_program(draw):
    n_stmts = draw(st.integers(min_value=1, max_value=6))
    lines = []
    names = ["x"]
    for i in range(n_stmts):
        op = draw(ops)
        lhs = draw(st.sampled_from(names))
        rhs = draw(small)
        name = f"v{i}"
        lines.append(f"    {name} = ({lhs} {op} {rhs}) & 65535;")
        names.append(name)
    decls = "\n".join(f"  uint32 v{i};" for i in range(n_stmts))
    body = "\n".join(lines)
    out = names[-1]
    return f"""
void f(co_stream input, co_stream output) {{
  uint32 x;
{decls}
  while (co_stream_read(input, &x)) {{
{body}
    co_stream_write(output, {out});
  }}
  co_stream_close(output);
}}
"""


@settings(max_examples=30, deadline=None)
@given(straightline_program(), st.lists(small, min_size=1, max_size=6))
def test_interp_equals_cycle_model(src, data):
    func = lower_one(src)
    _, sw = interp_outputs(func, {"input": list(data)})
    cp = compile_one(src)
    _, hw = run_cycle_model(cp, {"input": list(data)})
    assert hw["output"] == sw["output"]


@settings(max_examples=20, deadline=None)
@given(straightline_program(), st.lists(small, min_size=1, max_size=4))
def test_cycle_model_equals_rtl_sim(src, data):
    cp = compile_one(src)
    _, hw = run_cycle_model(cp, {"input": list(data)})

    cin = Channel("i", depth=4096)
    cout = Channel("o", depth=1_000_000)
    for v in data:
        cin.push(v)
    cin.close()
    sim = RtlSim(cp.rtl, {"input": cin, "output": cout})
    sim.run()
    assert list(cout.queue) == hw["output"]


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=999), min_size=1,
                max_size=8))
def test_assertion_levels_preserve_pass_behaviour(data):
    """Whatever the assertion level, a passing program's outputs match."""
    from repro.core.synth import synthesize
    from repro.runtime.hwexec import execute
    from repro.runtime.taskgraph import Application

    src = """
void p(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x < 1000);
    co_stream_write(output, x + 7);
  }
  co_stream_close(output);
}
"""
    expected = [x + 7 for x in data]
    for level in ("none", "unoptimized", "optimized"):
        app = Application("t")
        app.add_c_process(src, name="p", filename="p.c")
        app.feed("in", "p.input", data=list(data))
        app.sink("out", "p.output")
        hw = execute(synthesize(app, assertions=level))
        assert hw.completed
        assert hw.outputs["out"] == expected
