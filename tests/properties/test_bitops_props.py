"""Property-based tests for exact-width bit arithmetic."""

from hypothesis import given, strategies as st

from repro.utils.bitops import (
    bit_length_for,
    clog2,
    mask,
    sign_extend,
    truncate,
)

widths = st.integers(min_value=1, max_value=64)
values = st.integers(min_value=-(2**70), max_value=2**70)


@given(values, widths)
def test_truncate_idempotent(v, w):
    assert truncate(truncate(v, w), w) == truncate(v, w)


@given(values, widths)
def test_truncate_bounded(v, w):
    assert 0 <= truncate(v, w) <= mask(w)


@given(values, widths)
def test_sign_extend_roundtrip(v, w):
    s = sign_extend(v, w)
    assert truncate(s, w) == truncate(v, w)
    assert -(2 ** (w - 1)) <= s < 2 ** (w - 1)


@given(widths)
def test_mask_is_all_ones(w):
    assert mask(w) == 2**w - 1
    assert mask(w).bit_length() == w


@given(st.integers(min_value=1, max_value=2**40))
def test_clog2_bounds(n):
    bits = clog2(n)
    assert 2**bits >= n
    assert bits == 0 or 2 ** (bits - 1) < n


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_bit_length_for_minimal(v):
    w = bit_length_for(v)
    assert truncate(v, w) == v
    assert w == 1 or truncate(v, w - 1) != v


@given(values, values, widths)
def test_modular_addition_consistent(a, b, w):
    assert truncate(a + b, w) == truncate(truncate(a, w) + truncate(b, w), w)
