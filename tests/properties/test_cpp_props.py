"""Property tests for the preprocessor: structure-preserving guarantees."""

from hypothesis import given, strategies as st

from repro.frontend.cpp import preprocess, strip_comments

ident = st.from_regex(r"[A-Z][A-Z0-9_]{0,6}", fullmatch=True)
code_line = st.from_regex(r"[a-z0-9 =+;]{0,20}", fullmatch=True)


@given(st.lists(code_line, max_size=12))
def test_line_count_preserved(lines):
    src = "\n".join(lines)
    res = preprocess(src)
    assert len(res.text.split("\n")) == len(src.split("\n"))


@given(ident, st.lists(code_line, min_size=1, max_size=6))
def test_disabled_region_blanked_line_for_line(name, lines):
    body = "\n".join(lines)
    src = f"#ifdef {name}\n{body}\n#endif\ntail"
    res = preprocess(src)
    out = res.text.split("\n")
    assert len(out) == len(src.split("\n"))
    assert out[-1] == "tail"
    for line, orig in zip(out[1:-2], lines):
        if orig.strip():
            assert line == ""


@given(ident, st.integers(min_value=0, max_value=999))
def test_define_expansion_value(name, value):
    src = f"#define {name} {value}\nint a[{name}];"
    res = preprocess(src)
    assert f"int a[{value}];" in res.text


@given(st.lists(code_line, max_size=8))
def test_strip_comments_idempotent(lines):
    src = "\n".join(lines)
    once = strip_comments(src)
    assert strip_comments(once) == once


@given(st.text(alphabet="ab/*\n ", max_size=60))
def test_strip_comments_preserves_line_count(text):
    assert strip_comments(text).count("\n") == text.count("\n")


@given(ident)
def test_ifdef_else_exactly_one_branch(name):
    src = f"#ifdef {name}\nbranch_a\n#else\nbranch_b\n#endif"
    res_without = preprocess(src)
    res_with = preprocess(src, defines={name: ""})
    assert ("branch_a" in res_with.text) and ("branch_b" not in res_with.text)
    assert ("branch_b" in res_without.text) and (
        "branch_a" not in res_without.text
    )
