"""Generator properties: determinism, dialect validity, knob coverage."""

from repro.difftest.generator import GenConfig, generate
from repro.frontend.lowering import lower_source


def test_same_seed_same_program():
    for seed in (0, 1, 17, 151, 9999):
        a = generate(seed)
        b = generate(seed)
        assert a.render() == b.render()
        assert a.feed == b.feed


def test_different_seeds_differ():
    sources = {generate(seed).render() for seed in range(20)}
    assert len(sources) > 15  # near-certain uniqueness


def test_generated_programs_lower_cleanly():
    for seed in range(25):
        prog = generate(seed)
        module = lower_source(prog.render(), filename=f"seed{seed}.c")
        assert len(module.functions) == 1


def test_config_changes_the_program():
    base = generate(5)
    no_kernel = generate(5, GenConfig(signed_kernel=False))
    assert base.render() != no_kernel.render()
    assert "sdk" not in no_kernel.render()


def test_no_asserts_config():
    for seed in range(10):
        prog = generate(seed, GenConfig(asserts=False))
        assert "assert(" not in prog.render()


def test_signed_kernel_always_present():
    # every default-config seed exercises the signed div/mod bug class
    for seed in range(10):
        src = generate(seed).render()
        assert "sdk = " in src and ("/ " in src or "% " in src)


def test_feed_bounds_respected():
    cfg = GenConfig(min_feed=3, max_feed=4)
    for seed in range(10):
        assert 3 <= len(generate(seed, cfg).feed) <= 4


def test_stmt_count_counts_nested():
    prog = generate(3)
    assert prog.stmt_count() >= len(prog.body)
