"""Reducer tests: convergence to a minimal still-failing reproducer."""

from repro.difftest.generator import generate
from repro.difftest.oracle import run_difftest
from repro.difftest.reduce import reduce_program, same_bug


def _break_rtl_signed_division(monkeypatch):
    monkeypatch.setattr("repro.rtl.sim._value_operands",
                        lambda a, b, expr: (a, b))


def _find_diverging_seed():
    for seed in range(20):
        prog = generate(seed)
        r = run_difftest(prog.render(), prog.feed)
        if not r.ok:
            return prog, r.divergence
    raise AssertionError("no diverging seed in 0..20 with the bug on")


def test_reducer_shrinks_and_preserves_failure(monkeypatch):
    _break_rtl_signed_division(monkeypatch)
    prog, original = _find_diverging_seed()

    def check(candidate):
        r = run_difftest(candidate.render(), candidate.feed)
        return same_bug(original, r.divergence)

    reduced = reduce_program(prog, check, max_checks=150)
    assert reduced.stmt_count() <= prog.stmt_count()
    assert len(reduced.feed) <= len(prog.feed)
    # the reduced program still exhibits the same bug...
    final = run_difftest(reduced.render(), reduced.feed)
    assert same_bug(original, final.divergence)
    # ...and is genuinely small: the signed-division kernel alone
    assert reduced.stmt_count() <= 4


def test_reducer_is_identity_when_nothing_shrinks(monkeypatch):
    _break_rtl_signed_division(monkeypatch)
    prog, _ = _find_diverging_seed()

    # reject every candidate: reduction must return the input unchanged
    reduced = reduce_program(prog, lambda c: False, max_checks=50)
    assert reduced.render() == prog.render()
    assert reduced.feed == prog.feed


def test_reducer_respects_check_budget(monkeypatch):
    _break_rtl_signed_division(monkeypatch)
    prog, original = _find_diverging_seed()
    calls = [0]

    def counting_check(candidate):
        calls[0] += 1
        r = run_difftest(candidate.render(), candidate.feed)
        return same_bug(original, r.divergence)

    reduce_program(prog, counting_check, max_checks=10)
    assert calls[0] <= 11  # budget + the final decl-prune verification


def test_same_bug_matches_phase_and_kind():
    from repro.difftest.oracle import Divergence

    a = Divergence("cyclemodel-vs-rtl", "stream-data", "m")
    b = Divergence("cyclemodel-vs-rtl", "stream-data", "other msg")
    c = Divergence("interp-vs-cyclemodel", "stream-data", "m")
    d = Divergence("cyclemodel-vs-rtl", "hang", "m")
    assert same_bug(a, b)
    assert not same_bug(a, c)
    assert not same_bug(a, d)
    assert not same_bug(a, None)
    assert not same_bug(None, None)
