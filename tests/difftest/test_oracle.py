"""Oracle tests: agreement on clean programs, detection of injected bugs."""

import pytest

from repro.difftest.generator import generate
from repro.difftest.oracle import DifftestError, run_difftest
from repro.faults.ir import NarrowCompare, ReadForWrite

IDENTITY = """
void dt(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) { co_stream_write(output, x); }
  co_stream_close(output);
}
"""


def test_clean_program_agrees():
    r = run_difftest(IDENTITY, [1, 2, 3])
    assert r.ok
    assert r.outputs["output"] == [1, 2, 3]
    assert r.cm_cycles == r.rtl_cycles > 0


def test_generated_seeds_agree():
    for seed in range(15):
        prog = generate(seed)
        r = run_difftest(prog.render(), prog.feed, filename=f"s{seed}.c")
        assert r.ok, f"seed {seed}: {r.divergence.describe()}"


def test_assertions_are_instrumented_and_compared():
    src = """
void dt(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x < 10);
    co_stream_write(output, x);
  }
  co_stream_close(output);
}
"""
    r = run_difftest(src, [3, 50])
    assert r.ok
    assert r.assertions == 1
    # the failing assertion produced an error code on the __afail stream
    # in *all three* models, so agreement still holds
    assert r.outputs["__afail"] == [0xA000]


def test_narrow_compare_fault_detected():
    src = """
void dt(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    if (x > 70000) { co_stream_write(output, (uint32)(1)); }
    else { co_stream_write(output, (uint32)(0)); }
  }
  co_stream_close(output);
}
"""
    # 131072 truncates to 0 at 16 bits, flipping the faulted compare
    r = run_difftest(src, [5, 131072], faults=(NarrowCompare(width=16),))
    assert not r.ok
    d = r.divergence
    assert d.phase == "interp-vs-cyclemodel"
    assert d.kind == "stream-data"
    assert d.stream == "output"
    assert d.values["interp"] != d.values["cyclemodel"]


def test_read_for_write_fault_detected_as_hang():
    src = """
void dt(co_stream input, co_stream output) {
  uint32 x;
  uint32 flag[2];
  uint32 i;
  while (co_stream_read(input, &x)) {
    flag[0] = 0;
    flag[1] = x;
    i = 0;
    while (flag[0] == 0) { flag[0] = flag[1]; i += 1; }
    co_stream_write(output, (uint32)(i));
  }
  co_stream_close(output);
}
"""
    r = run_difftest(src, [7], faults=(ReadForWrite(array="flag"),),
                     max_cycles=3000)
    assert not r.ok
    assert r.divergence.kind == "hang"
    assert r.divergence.phase == "interp-vs-cyclemodel"


def test_reintroduced_signed_division_bug_is_localized(monkeypatch):
    # undo the satellite fix through its seam: divide raw bit patterns
    monkeypatch.setattr("repro.rtl.sim._value_operands",
                        lambda a, b, expr: (a, b))
    src = """
void dt(co_stream input, co_stream output) {
  uint32 x; int8 v;
  while (co_stream_read(input, &x)) {
    v = ((int8)x) / 3;
    co_stream_write(output, (uint32)(v));
  }
  co_stream_close(output);
}
"""
    r = run_difftest(src, [0xF3])  # (int8)0xF3 == -13; -13/3 == -4 in C
    assert not r.ok
    d = r.divergence
    # the report names the divergent phase, stream, cycle, FSM state and
    # the first register that went wrong — the in-circuit localization
    assert d.phase == "cyclemodel-vs-rtl"
    assert d.kind == "stream-data"
    assert d.stream == "output"
    assert d.cycle is not None and d.cycle > 0
    assert d.state is not None
    assert d.signal is not None and d.signal.startswith("r_")
    assert d.values["cyclemodel"] != d.values["rtl"]
    assert "cycle" in d.as_dict() and "state" in d.as_dict()


def test_bad_program_is_harness_error_not_divergence():
    with pytest.raises(DifftestError):
        run_difftest("void dt(co_stream o) { garbage }", [])


def test_divergence_report_roundtrips_to_dict():
    src = """
void dt(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    if (x > 70000) { co_stream_write(output, (uint32)(1)); }
    else { co_stream_write(output, (uint32)(0)); }
  }
  co_stream_close(output);
}
"""
    r = run_difftest(src, [131072], faults=(NarrowCompare(width=16),))
    d = r.divergence.as_dict()
    assert d["phase"] and d["kind"] and d["message"]
    assert "describe" not in d
    assert isinstance(r.divergence.describe(), str)
