"""Campaign runner tests: store records, seed files, resume, CLI."""

import json

from repro.cli import main
from repro.difftest.generator import GenConfig
from repro.difftest.runner import (
    DifftestSpec,
    evaluate_seed,
    replay_seed_file,
    run_difftest_campaign,
)


def _spec(lo, hi, **kw):
    kw.setdefault("gen", GenConfig())
    kw.setdefault("reduce_checks", 60)
    return DifftestSpec(name="t", seeds=(lo, hi), **kw)


def test_clean_campaign_all_agree(tmp_path):
    result = run_difftest_campaign(
        _spec(0, 6), jobs=1, store_root=tmp_path / "runs",
        cache_root=tmp_path / "cache", progress=False,
    )
    assert result.ok
    assert len(result.records) == 6
    assert not result.divergent
    assert "agree" in result.render()
    assert result.manifest["counters"]["divergent"] == 0


def test_campaign_resume_skips_done_seeds(tmp_path):
    spec = _spec(0, 5)
    first = run_difftest_campaign(spec, store_root=tmp_path / "runs",
                                  progress=False)
    assert first.manifest["counters"]["done"] == 5
    second = run_difftest_campaign(spec, store_root=tmp_path / "runs",
                                   progress=False)
    assert second.manifest["counters"]["skipped_resume"] == 5
    assert second.manifest["counters"]["done"] == 0
    assert second.ok


def test_divergent_seed_produces_reduced_seed_file(tmp_path, monkeypatch):
    monkeypatch.setattr("repro.rtl.sim._value_operands",
                        lambda a, b, expr: (a, b))
    result = run_difftest_campaign(
        _spec(0, 2), jobs=1, store_root=tmp_path / "runs", progress=False,
    )
    assert not result.ok
    assert result.divergent
    assert result.seed_files
    data = json.loads(open(result.seed_files[0]).read())
    assert data["schema"] == 1
    assert data["source"] and data["reduced_source"]
    assert len(data["reduced_source"]) <= len(data["source"])
    d = data["divergence"]
    # the acceptance-criterion shape: reproducer names cycle/state/signal
    assert d["phase"] == "cyclemodel-vs-rtl"
    assert d["cycle"] and d["state"] and d["signal"]


def test_replay_seed_file_reproduces_and_clears(tmp_path, monkeypatch):
    monkeypatch.setattr("repro.rtl.sim._value_operands",
                        lambda a, b, expr: (a, b))
    result = run_difftest_campaign(
        _spec(0, 1), jobs=1, store_root=tmp_path / "runs", progress=False,
    )
    seed_file = result.seed_files[0]
    # with the bug still present the replay diverges...
    assert not replay_seed_file(seed_file).ok
    monkeypatch.undo()
    # ...and with the fix in place the same reproducer passes
    assert replay_seed_file(seed_file).ok
    assert replay_seed_file(seed_file, reduced=False).ok


def test_evaluate_seed_record_shape(tmp_path):
    rec = evaluate_seed((_spec(3, 4), 3, None))
    assert rec["point_id"] == "seed-3"
    assert rec["divergent"] is False
    assert rec["stmts"] > 0 and rec["cm_cycles"] > 0


def test_spec_fingerprint_tracks_content():
    assert _spec(0, 5).run_id() == _spec(0, 5).run_id()
    assert _spec(0, 5).run_id() != _spec(0, 6).run_id()
    assert (_spec(0, 5).fingerprint()
            != _spec(0, 5, gen=GenConfig(asserts=False)).fingerprint())


def test_cli_difftest_campaign(tmp_path, capsys):
    rc = main([
        "difftest", "--seeds", "0:3", "--store", str(tmp_path / "runs"),
        "--cache", str(tmp_path / "cache"),
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "0 divergent" in out


def test_cli_difftest_replay(tmp_path, capsys, monkeypatch):
    monkeypatch.setattr("repro.rtl.sim._value_operands",
                        lambda a, b, expr: (a, b))
    rc = main([
        "difftest", "--seeds", "0:1", "--store", str(tmp_path / "runs"),
    ])
    assert rc == 1
    out = capsys.readouterr().out
    seed_file = next(line.split(": ", 1)[1] for line in out.splitlines()
                     if line.startswith("reproducer: "))
    assert main(["difftest", "--replay", seed_file]) == 1
    monkeypatch.undo()
    assert main(["difftest", "--replay", seed_file]) == 0


def test_cli_rejects_bad_seed_range():
    import pytest

    with pytest.raises(SystemExit):
        main(["difftest", "--seeds", "5:5"])
    with pytest.raises(SystemExit):
        main(["difftest", "--seeds", "nonsense"])
