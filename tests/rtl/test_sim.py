"""RTL simulator tests, including cross-validation against the cycle model.

For sequential processes the emitted RTL and the schedule-level cycle model
must agree on outputs and (within done-detection accounting) on cycles —
this is the evidence that the printed Verilog means what the cycle model
measured.
"""

import pytest

from repro.errors import SimulationError
from repro.hls.cyclemodel import Channel, ProcessExec
from repro.rtl.sim import RtlSim
from tests.helpers import compile_one


def run_both(src, inputs, in_name="input", out_name="output"):
    cp = compile_one(src)

    def fresh():
        cin = Channel("i", depth=4096)
        cout = Channel("o", depth=1_000_000)
        for v in inputs:
            cin.push(v)
        cin.close()
        return cin, cout

    cin, cout = fresh()
    pe = ProcessExec(cp.schedule, {in_name: cin, out_name: cout})
    while not pe.done and pe.cycles < 100_000:
        pe.tick()
    cm = (pe.cycles, list(cout.queue), cout.closed)

    cin, cout = fresh()
    sim = RtlSim(cp.rtl, {in_name: cin, out_name: cout})
    res = sim.run()
    rt = (res.cycles, list(cout.queue), cout.closed)
    return cm, rt


def test_identity_process_agrees():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) { co_stream_write(output, x); }
  co_stream_close(output);
}
"""
    cm, rt = run_both(src, [1, 2, 3])
    assert cm == rt


def test_arith_heavy_process_agrees():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x; int32 s;
  while (co_stream_read(input, &x)) {
    s = (int32)x - 100;
    co_stream_write(output, (s < 0) ? (uint32)(-s) : (uint32)s);
    co_stream_write(output, (x * 7) ^ (x >> 3));
  }
  co_stream_close(output);
}
"""
    cm, rt = run_both(src, [1, 99, 200, 4096])
    assert cm[1] == rt[1]
    assert cm[0] == rt[0]


def test_memory_process_agrees():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  uint16 buf[8] = {10, 20, 30};
  while (co_stream_read(input, &x)) {
    buf[x & 7] = buf[x & 7] + x;
    co_stream_write(output, buf[x & 7]);
  }
  co_stream_close(output);
}
"""
    cm, rt = run_both(src, [0, 1, 2, 0, 5])
    assert cm == rt


def test_control_flow_process_agrees():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x; uint32 i; uint32 acc;
  while (co_stream_read(input, &x)) {
    acc = 0;
    for (i = 0; i < x; i++) {
      if (i % 3 == 0) { acc += i; } else { acc ^= i; }
    }
    co_stream_write(output, acc);
  }
  co_stream_close(output);
}
"""
    cm, rt = run_both(src, [1, 5, 10])
    assert cm == rt


def test_signed_arithmetic_agrees():
    src = """
void f(co_stream input, co_stream output) {
  int32 x;
  while (co_stream_read(input, &x)) {
    co_stream_write(output, x / 3);
    co_stream_write(output, x % 3);
    co_stream_write(output, x >> 2);
  }
  co_stream_close(output);
}
"""
    cm, rt = run_both(src, [(-13) & 0xFFFFFFFF, 13])
    assert cm == rt


def test_rtl_backpressure():
    src = """
void f(co_stream output) {
  uint32 i;
  for (i = 0; i < 4; i++) { co_stream_write(output, i); }
  co_stream_close(output);
}
"""
    cp = compile_one(src)
    cout = Channel("o", depth=1)
    sim = RtlSim(cp.rtl, {"output": cout})
    for _ in range(20):
        sim.tick()
    assert len(cout.queue) == 1
    collected = []
    for _ in range(200):
        if cout.can_pop():
            collected.append(cout.pop())
        if sim.tick() == "done":
            break
    collected += list(cout.queue)
    assert collected == [0, 1, 2, 3]
    assert sim.stalled > 0


def test_ext_hdl_hook_in_rtl_sim():
    src = "void f(co_stream output) { co_stream_write(output, ext_hdl(5)); co_stream_close(output); }"
    cp = compile_one(src)
    cout = Channel("o", depth=8)
    sim = RtlSim(cp.rtl, {"output": cout}, ext_hdl=lambda v: v * 11)
    sim.run()
    assert list(cout.queue) == [55]


def test_pipelined_module_rejected_by_rtl_sim():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) { co_stream_write(output, x); }
}
"""
    cp = compile_one(src)
    with pytest.raises(SimulationError):
        RtlSim(cp.rtl, {"input": Channel("i"), "output": Channel("o")})


def test_narrow_compare_fault_executes_in_rtl():
    from repro.hls.compiler import compile_process
    from repro.hls.constraints import HLSConfig
    from repro.hls.faults import NarrowCompare
    from tests.helpers import lower_one

    src = """
void f(co_stream output) {
  uint64 c1; uint64 c2;
  c1 = 4294967296;
  c2 = 4294967286;
  co_stream_write(output, c2 > c1);
  co_stream_close(output);
}
"""
    good = compile_process(lower_one(src))
    bad = compile_process(lower_one(src),
                          HLSConfig(faults=(NarrowCompare(width=5),)))
    out_good = Channel("o", depth=4)
    RtlSim(good.rtl, {"output": out_good}).run()
    out_bad = Channel("o", depth=4)
    RtlSim(bad.rtl, {"output": out_bad}).run()
    assert list(out_good.queue) == [0]
    assert list(out_bad.queue) == [1]


@pytest.mark.parametrize("ty,vals", [
    ("int8", [3, 125, 128, 243, 255]),       # patterns incl. -128, -13, -1
    ("int16", [7, 32767, 32768, 65523]),     # incl. -32768, -13
    ("int32", [13, 2147483647, 2147483648, 4294967283]),
])
def test_signed_division_negative_dividends_agree(ty, vals):
    # the historical bug: RtlSim divided the unsigned bit patterns, so the
    # truncate-toward-zero sign correction never fired for negative values
    src = f"""
void f(co_stream input, co_stream output) {{
  uint32 x; {ty} v;
  while (co_stream_read(input, &x)) {{
    v = ({ty})x;
    co_stream_write(output, (uint32)(v / 3));
    co_stream_write(output, (uint32)(v % 3));
    co_stream_write(output, (uint32)(v / (-5)));
    co_stream_write(output, (uint32)(v % (-5)));
  }}
  co_stream_close(output);
}}
"""
    cm, rt = run_both(src, vals)
    assert cm == rt


def test_signed_division_matches_c_reference():
    # -13 / 3 == -4 (not -5): C truncates toward zero
    src = """
void f(co_stream input, co_stream output) {
  int16 v;
  uint32 x;
  while (co_stream_read(input, &x)) {
    v = (int16)x;
    co_stream_write(output, (uint32)(v / 3));
  }
  co_stream_close(output);
}
"""
    cm, rt = run_both(src, [(-13) & 0xFFFF])
    assert rt[1] == [(-4) & 0xFFFFFFFF]
    assert cm == rt


def _identity_cp():
    return compile_one("""
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) { co_stream_write(output, x); }
  co_stream_close(output);
}
""")


def test_unconnected_stream_binding_raises():
    cp = _identity_cp()
    with pytest.raises(SimulationError, match="neither"):
        RtlSim(cp.rtl, {"input": Channel("i"), "outptu": Channel("o")})


def test_stream_role_error_names_module_streams():
    cp = _identity_cp()
    with pytest.raises(SimulationError, match="output"):
        RtlSim(cp.rtl, {"input": Channel("i"), "bogus": Channel("o")})


def test_writer_requires_explicit_we_port():
    # correct bindings classify: input is a reader, output a writer
    cp = _identity_cp()
    sim = RtlSim(cp.rtl, {"input": Channel("i"), "output": Channel("o")})
    assert set(sim._readers) == {"input"}
    assert set(sim._writers) == {"output"}


def test_unknown_port_read_is_a_coded_error():
    """Regression for the _port_value dispatch-dict rewrite: a port name
    outside the prebuilt table must still raise the RPR-X103 diagnostic
    (not a KeyError), and every declared stream port must be in it."""
    cp = _identity_cp()
    sim = RtlSim(cp.rtl, {"input": Channel("i"), "output": Channel("o")})
    with pytest.raises(SimulationError) as ei:
        sim._port_value("input_bogus")
    assert ei.value.code == "RPR-X103"
    assert "input_bogus" in str(ei.value)
    for suffix in ("data", "empty", "eos"):
        assert f"input_{suffix}" in sim._port_fns
    assert "output_full" in sim._port_fns
