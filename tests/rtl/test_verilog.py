"""Unit tests for Verilog emission."""

from repro.rtl import core as R
from repro.rtl.verilog import emit_expr
from tests.helpers import compile_one

SRC = """
void acc(co_stream input, co_stream output) {
  uint32 x;
  uint32 total;
  uint8 lut[4] = {1, 2, 3, 4};
  total = 0;
  while (co_stream_read(input, &x)) {
    total += lut[x & 3];
    co_stream_write(output, total);
  }
  co_stream_close(output);
}
"""


def emitted():
    return compile_one(SRC).verilog()


def test_module_header_and_ports():
    v = emitted()
    assert v.startswith("module acc (")
    for port in ("input_data", "input_empty", "input_eos", "input_re",
                 "output_data", "output_full", "output_we", "output_close"):
        assert port in v


def test_clk_rst_and_state_machine():
    v = emitted()
    assert "input clk;" in v
    assert "always @(posedge clk)" in v
    assert "case (state)" in v
    assert "state <= 0;" in v  # reset


def test_memory_declared_and_initialized():
    v = emitted()
    assert "reg [7:0] lut [0:3];" in v
    assert "lut[0] = 1;" in v
    assert "lut[3] = 4;" in v


def test_registers_declared_with_widths():
    v = emitted()
    assert "reg [31:0] r_total;" in v
    assert "reg r_ok0;" in v


def test_strobe_assignments_present():
    v = emitted()
    assert "assign input_re =" in v
    assert "assign output_we =" in v
    assert "assign output_close =" in v


def test_stall_guards_stream_states():
    v = emitted()
    assert "input_empty && (!input_eos)" in v.replace("  ", " ") or \
        "(input_empty && (!input_eos))" in v


def test_emit_expr_literals_and_ops():
    assert emit_expr(R.Lit(5, 8)) == "8'd5"
    e = R.BinExpr("+", R.Lit(1, 8), R.Lit(2, 8), 8)
    assert emit_expr(e) == "(8'd1 + 8'd2)"
    s = R.SliceExpr(R.Ref(R.Signal("x", 8)), 3, 0)
    assert emit_expr(s) == "x[3:0]"
    bit = R.SliceExpr(R.Ref(R.Signal("x", 8)), 3, 3)
    assert emit_expr(bit) == "x[3]"


def test_emit_signed_compare_uses_dollar_signed():
    e = R.BinExpr("<", R.Ref(R.Signal("a", 8)), R.Ref(R.Signal("b", 8)), 1,
                  signed_cmp=True)
    assert "$signed(a)" in emit_expr(e)


def test_emit_extensions():
    z = R.UnExpr("zext", R.Ref(R.Signal("a", 4)), 8)
    assert emit_expr(z) == "{{4{1'b0}}, a}"
    s = R.UnExpr("sext", R.Ref(R.Signal("a", 4)), 8)
    assert emit_expr(s) == "{{4{a[3]}}, a}"


def test_narrow_compare_fault_visible_in_verilog():
    # the injected 5-bit comparison must appear in the emitted RTL
    from repro.hls.compiler import compile_process
    from repro.hls.constraints import HLSConfig
    from repro.hls.faults import NarrowCompare
    from tests.helpers import lower_one

    src = """
void f(co_stream output) {
  uint64 c1; uint64 c2;
  c1 = 4294967296;
  c2 = 4294967286;
  co_stream_write(output, c2 > c1);
}
"""
    cp = compile_process(lower_one(src),
                         HLSConfig(faults=(NarrowCompare(width=5),)))
    v = cp.verilog()
    assert "[4:0]" in v  # the 5-bit slices of the faulty comparison


def test_pipelined_module_emits_stage_comment():
    src = """
void p(co_stream input, co_stream output) {
  uint32 x;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) { co_stream_write(output, x + 1); }
}
"""
    v = compile_one(src).verilog()
    assert "pipelined loop" in v
    assert "II=1" in v


def test_emitted_verilog_balanced_blocks():
    v = emitted()
    assert v.count("module ") == v.count("endmodule")
    assert v.count(" begin") >= v.count(" end") - v.count("endmodule")


def test_pipeline_stage_registers_emitted():
    src = """
void p(co_stream input, co_stream output) {
  uint32 x;
  uint32 acc;
  acc = 0;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    acc = acc + x;
    co_stream_write(output, acc);
  }
  co_stream_close(output);
}
"""
    v = compile_one(src).verilog()
    # valid shift register + initiation counter
    assert "while0_valid" in v and "while0_go" in v
    # stage-suffixed pipeline registers
    assert "p_x_s0" in v and "p_x_s1 <= p_x_s0;" in v
    # loop-carried value reads the architectural register and commits back
    assert "(r_acc + p_x_s1)" in v
    assert "r_acc <= p_acc_s1;" in v


def test_pipeline_predicated_store_guarded():
    src = """
void p(co_stream input, co_stream output) {
  uint32 x;
  uint32 buf[4];
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    if (x > 2) { buf[x & 3] = x; }
    co_stream_write(output, x);
  }
  co_stream_close(output);
}
"""
    v = compile_one(src).verilog()
    assert "buf[" in v
    # the store sits inside a predicate guard within its stage
    store_region = v[v.index("// pipelined loop"):]
    assert "if (" in store_region
