"""Cross-validation of golden models against the scientific Python stack.

The edge-detection golden model (hand-rolled, bit-exact to the hardware)
is checked against an independent scipy 2-D convolution on the steady-state
interior, and the DES avalanche property is checked statistically with
numpy — independent evidence that the golden models themselves are right.
"""

import numpy as np
from scipy.signal import convolve2d

from repro.apps.des_tables import des_block, key_schedule
from repro.apps.edge_detect import golden_edge


def test_edge_interior_matches_scipy_convolution():
    w, h = 20, 12
    rng = np.random.default_rng(7)
    img = rng.integers(0, 4096, size=(h, w), dtype=np.int64)
    pixels = [int(v) for v in img.reshape(-1)]
    ours = np.array(golden_edge(w, h, pixels), dtype=np.int64).reshape(h, w)

    kernel = -np.ones((5, 5), dtype=np.int64)
    kernel[2, 2] = 24  # 25*center - sum(window) == kernel correlation
    ref = np.abs(convolve2d(img, kernel[::-1, ::-1], mode="valid"))

    # the streaming kernel's output at (y, x) covers the window ending
    # there: rows y-4..y, cols x-4..x; compare the aligned interior
    for y in range(4, h):
        for x in range(4, w):
            assert ours[y, x] == ref[y - 4, x - 4], (y, x)


def test_edge_border_semantics_are_dont_care_but_deterministic():
    w, h = 8, 8
    pixels = [1] * (w * h)
    a = golden_edge(w, h, pixels)
    b = golden_edge(w, h, pixels)
    assert a == b


def test_des_avalanche_property():
    """Flipping one plaintext bit flips ~half the ciphertext bits."""
    ks = key_schedule(0x0123456789ABCDEF)
    rng = np.random.default_rng(42)
    ratios = []
    for _ in range(20):
        block = int(rng.integers(0, 2**63))
        bit = int(rng.integers(0, 64))
        c1 = des_block(block, ks)
        c2 = des_block(block ^ (1 << bit), ks)
        flipped = bin(c1 ^ c2).count("1")
        ratios.append(flipped / 64.0)
    mean = float(np.mean(ratios))
    assert 0.40 < mean < 0.60
    assert all(r > 0.15 for r in ratios)


def test_des_output_bits_unbiased():
    ks = key_schedule(0x0123456789ABCDEF)
    ones = 0
    n = 64
    for i in range(n):
        ones += bin(des_block(i, ks)).count("1")
    ratio = ones / (64 * n)
    assert 0.45 < ratio < 0.55
