"""Unit tests for the DES/3DES golden model and C implementation."""

from repro.apps import des_tables as T
from repro.apps.tripledes import (
    DEFAULT_KEYS,
    build_tdes_app,
    encrypt_text,
    expected_blocks,
    round_key_rom,
    tdes_source,
)
from repro.runtime.swsim import software_sim


def test_fips_test_vector():
    ks = T.key_schedule(0x133457799BBCDFF1)
    assert T.des_block(0x0123456789ABCDEF, ks) == 0x85E813540F0AB405


def test_des_decrypt_inverts_encrypt():
    ks = T.key_schedule(0x0123456789ABCDEF)
    for block in (0, 0xFFFFFFFFFFFFFFFF, 0xDEADBEEFCAFEF00D):
        assert T.des_block(T.des_block(block, ks), ks, decrypt=True) == block


def test_key_schedule_produces_16_48bit_keys():
    ks = T.key_schedule(0x0123456789ABCDEF)
    assert len(ks) == 16
    assert all(0 <= k < 2**48 for k in ks)
    assert len(set(ks)) > 1


def test_tdes_roundtrip():
    blk = 0x4E6F772069732074
    e = T.tdes_encrypt_block(blk, *DEFAULT_KEYS)
    assert e != blk
    assert T.tdes_decrypt_block(e, *DEFAULT_KEYS) == blk


def test_single_key_tdes_degenerates_to_des():
    k = 0x0123456789ABCDEF
    ks = T.key_schedule(k)
    blk = 0x0011223344556677
    assert T.tdes_encrypt_block(blk, k, k, k) == T.des_block(blk, ks)


def test_pack_unpack_text_roundtrip():
    text = b"The quick brown fox"
    assert T.unpack_text(T.pack_text(text)) == text


def test_sbox_tables_shape():
    assert len(T.SBOX) == 8
    assert all(len(box) == 64 for box in T.SBOX)
    assert all(0 <= v < 16 for box in T.SBOX for v in box)


def test_permutation_tables_are_permutations():
    assert sorted(T.IP) == list(range(1, 65))
    assert sorted(T.FP) == list(range(1, 65))
    assert sorted(T.P) == list(range(1, 33))
    assert sorted(set(T.E)) == list(range(1, 33))  # E repeats edge bits
    assert len(T.E) == 48


def test_round_key_rom_order():
    rom = round_key_rom(*DEFAULT_KEYS)
    assert len(rom) == 48
    assert rom[:16] == list(reversed(T.key_schedule(DEFAULT_KEYS[2])))
    assert rom[16:32] == T.key_schedule(DEFAULT_KEYS[1])


def test_generated_source_contains_tables_and_asserts():
    src = tdes_source(*DEFAULT_KEYS)
    assert "const uint8 sboxes[512]" in src
    assert "const uint64 rk[48]" in src
    assert src.count("assert(") == 2
    nosrc = tdes_source(*DEFAULT_KEYS, with_assertions=False)
    assert "assert(" not in nosrc


def test_compiled_tdes_decrypts_in_software_sim():
    text = b"FPGA!!"
    app = build_tdes_app(text)
    res = software_sim(app)
    assert res.completed and not res.aborted
    assert res.outputs["plain"] == expected_blocks(text)
    assert T.unpack_text(res.outputs["plain"]) == text


def test_corrupted_ciphertext_trips_ascii_assertions():
    text = b"hello world"
    app = build_tdes_app(text)
    app.streams["cipher"].feeder_data[0] ^= 0xFFFF  # corrupt one block
    res = software_sim(app)
    assert res.aborted
    assert "Assertion failed" in res.stderr[0]


def test_encrypt_text_blocks_count():
    assert len(encrypt_text(b"x" * 17)) == 3
