"""Unit tests for edge detection, loopback and the debugging demo apps."""

from repro.apps.edge_detect import build_edge_app, edge_source, golden_edge
from repro.apps.loopback import build_loopback, expected_output
from repro.apps.verification import (
    build_divergence_app,
    build_hang_app,
    hw_ext_hdl,
    sw_ext_hdl,
)
from repro.core.synth import synthesize
from repro.runtime.hwexec import execute
from repro.runtime.swsim import software_sim


def pixels(w, h):
    return [
        ((x * 7 + y * 13) ^ (0xFF if (x // 8 + y // 8) % 2 else 0)) & 0xFFFF
        for y in range(h)
        for x in range(w)
    ]


def test_edge_source_configurable():
    src = edge_source(64, 32)
    assert "uint16 line0[64]" in src
    assert "assert(w == 64);" in src
    assert "assert(h == 32);" in src
    assert "assert(" not in edge_source(64, 32, with_assertions=False)


def test_edge_sw_matches_golden():
    w, h = 16, 8
    px = pixels(w, h)
    res = software_sim(build_edge_app(w, h, px))
    assert res.completed
    assert res.outputs["edges_out"] == golden_edge(w, h, px)


def test_edge_golden_detects_block_edges():
    w, h = 16, 16
    flat = [100] * (w * h)
    assert all(v == 0 for v in golden_edge(w, h, flat)[5 * w:])
    stepped = [0] * (w * h // 2) + [1000] * (w * h // 2)
    assert any(v > 0 for v in golden_edge(w, h, stepped))


def test_edge_wrong_header_fails_assertions():
    w, h = 16, 8
    app = build_edge_app(w, h, pixels(w, h), header=(w, h + 5))
    res = software_sim(app)
    assert res.aborted
    assert f"h == {h}" in res.stderr[0]


def test_loopback_identity_all_levels():
    data = list(range(1, 9))
    app = build_loopback(3, data=data)
    sw = software_sim(app)
    assert sw.outputs["drain"] == expected_output(data)
    for level in ("none", "unoptimized", "optimized"):
        hw = execute(synthesize(app, assertions=level))
        assert hw.completed
        assert hw.outputs["drain"] == data, level


def test_loopback_zero_value_trips_assertion():
    app = build_loopback(2, data=[5, 0, 7])
    res = software_sim(app)
    assert res.aborted
    assert "buf[i & 15] > 0" in res.stderr[0]


def test_loopback_without_assertions_has_no_sites():
    app = build_loopback(2, with_assertions=False)
    assert app.assertion_sites() == []


def test_loopback_process_and_stream_counts():
    app = build_loopback(5)
    assert len(app.fpga_processes()) == 5
    assert len(app.streams) == 6  # feed + 4 links + drain


def test_divergence_sw_clean_hw_fails():
    app, faults = build_divergence_app()
    assert software_sim(app).completed
    hw = execute(synthesize(app, assertions="optimized", faults=faults),
                 max_cycles=500_000)
    assert hw.aborted
    assert "addr < 32" in hw.stderr[0]


def test_divergence_ext_hdl_bug_alone():
    app, faults = build_divergence_app(values=[255],
                                       inject_compare_bug=False,
                                       inject_ext_bug=True)
    assert software_sim(app).completed
    hw = execute(synthesize(app, assertions="optimized", faults=faults),
                 max_cycles=500_000)
    assert hw.aborted
    assert "r == (v + 1)" in hw.stderr[0]


def test_ext_hdl_models_differ_only_past_byte():
    assert sw_ext_hdl(5) == hw_ext_hdl(5)
    assert sw_ext_hdl(255) != hw_ext_hdl(255)


def test_divergence_without_faults_matches_sw():
    app, _ = build_divergence_app(values=[1, 2],
                                  inject_compare_bug=False,
                                  inject_ext_bug=False)
    sw = software_sim(app)
    hw = execute(synthesize(app, assertions="optimized"), max_cycles=500_000)
    assert hw.completed
    assert hw.outputs["res"] == sw.outputs["res"]


def test_hang_sw_completes_hw_hangs():
    app, faults = build_hang_app(with_traces=False)
    assert software_sim(app).completed
    hw = execute(synthesize(app, assertions="none", faults=faults),
                 max_cycles=20_000, idle_limit=32)
    assert hw.hung
    assert hw.traces


def test_hang_traces_locate_stuck_line():
    app, faults = build_hang_app(with_traces=True)
    sw = software_sim(app)
    sw_lines = {site.line for _p, site in sw.failures}
    img = synthesize(app, assertions="unoptimized", faults=faults, nabort=True)
    hw = execute(img, max_cycles=20_000, idle_limit=32)
    assert hw.hung
    hw_lines = {site.line for _p, site in hw.failures}
    # the hardware run never reaches the traces past the hang; the missing
    # line numbers bracket the bug, as in the paper's methodology
    assert hw_lines < sw_lines


def test_hang_absent_without_fault():
    app, _ = build_hang_app(with_traces=False, inject_hang_bug=False)
    hw = execute(synthesize(app, assertions="none"), max_cycles=100_000)
    assert hw.completed
