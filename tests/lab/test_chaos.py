"""Chaos harness: the fabric survives its own failure modes.

The contract under test: a campaign interrupted by injected worker
crashes, hangs and torn journal writes converges — via retry, timeout
kills and resume — to the *same canonical results* as an uninterrupted
run.
"""

import json
import os
import subprocess
import sys
import textwrap

from repro.lab.chaos import (
    CRASH_EXIT,
    TORN_EXIT,
    ChaosMonkey,
    ChaosSpec,
    active_chaos,
)
from repro.lab.executor import LabExecutor
from repro.lab.retry import RetryPolicy
from repro.lab.shard import merge_runs
from repro.lab.store import ResultStore

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def plus_one(x):
    return x + 1


# ---- spec and selection --------------------------------------------------

def test_spec_env_round_trip():
    spec = ChaosSpec(seed=7, crash=0.5, only=("seed-3",),
                     state_dir="/tmp/x")
    assert ChaosSpec.from_env(spec.to_env()) == spec
    assert active_chaos() is None or os.environ.get("REPRO_CHAOS")


def test_selection_is_deterministic_and_rate_gated():
    monkey = ChaosMonkey(ChaosSpec(seed=1))
    rolls = [monkey._selected("crash", 0.5, f"t{i}") for i in range(100)]
    assert rolls == [monkey._selected("crash", 0.5, f"t{i}")
                     for i in range(100)]
    assert 20 < sum(rolls) < 80          # a rate, not all-or-nothing
    assert not any(monkey._selected("crash", 0.0, f"t{i}")
                   for i in range(20))
    assert all(monkey._selected("crash", 1.0, f"t{i}") for i in range(20))


def test_only_filter_restricts_tokens():
    monkey = ChaosMonkey(ChaosSpec(crash=1.0, only=("seed-3",)))
    assert monkey._selected("crash", 1.0, "seed-3")
    assert not monkey._selected("crash", 1.0, "seed-4")


def test_ledger_fires_each_fault_once(tmp_path):
    spec = ChaosSpec(crash=1.0, state_dir=str(tmp_path / "ledger"))
    monkey = ChaosMonkey(spec)
    assert monkey.should_fire("crash", 1.0, "tok")
    assert not monkey.should_fire("crash", 1.0, "tok")   # claimed
    assert monkey.should_fire("crash", 1.0, "other")
    # a different monkey over the same ledger (a resumed run) sees the claim
    assert not ChaosMonkey(spec).should_fire("crash", 1.0, "tok")


# ---- crash and hang injection through the executor -----------------------

def test_injected_crash_is_retried_to_success(tmp_path, monkeypatch):
    spec = ChaosSpec(crash=1.0, state_dir=str(tmp_path / "ledger"),
                     only=("2",))
    monkeypatch.setenv("REPRO_CHAOS", spec.to_env())
    ex = LabExecutor(jobs=2, retry=RetryPolicy(max_attempts=3,
                                               base_delay=0.01,
                                               breaker=None))
    outcomes = ex.map(plus_one, [0, 1, 2, 3, 4])
    assert [oc.status for oc in outcomes] == ["ok"] * 5
    assert [oc.value for oc in outcomes] == [1, 2, 3, 4, 5]
    assert ex.stats.pool_breaks >= 1
    assert ex.stats.retries >= 1
    assert max(oc.attempts for oc in outcomes) >= 2


def test_injected_hang_is_killed_and_retried(tmp_path, monkeypatch):
    spec = ChaosSpec(hang=1.0, hang_s=600.0,
                     state_dir=str(tmp_path / "ledger"), only=("3",))
    monkeypatch.setenv("REPRO_CHAOS", spec.to_env())
    ex = LabExecutor(jobs=2, timeout=1.5,
                     retry=RetryPolicy(max_attempts=3, base_delay=0.01,
                                       breaker=None))
    outcomes = ex.map(plus_one, [0, 1, 2, 3])
    assert [oc.status for oc in outcomes] == ["ok"] * 4
    assert ex.stats.timeouts >= 1
    assert ex.stats.worker_kills >= 1
    assert outcomes[3].attempts >= 2


# ---- torn writes, driver kills, resume-to-identical ----------------------

SWEEP_SCRIPT = textwrap.dedent("""
    import sys
    sys.path.insert(0, {src!r})
    from repro.lab.sweep import AppSpec, SweepSpec, run_sweep
    spec = SweepSpec.cross("chaos",
                           [AppSpec.make("loopback", n=2)],
                           levels=("none", "optimized"))
    run_sweep(spec, jobs=1, store_root={store!r}, cache_root={cache!r})
""")


def run_sweep_subprocess(store, cache, env_extra=None):
    env = dict(os.environ)
    env.pop("REPRO_CHAOS", None)
    env.update(env_extra or {})
    script = SWEEP_SCRIPT.format(src=os.path.abspath(SRC),
                                 store=str(store), cache=str(cache))
    return subprocess.run([sys.executable, "-c", script],
                          capture_output=True, text=True, env=env,
                          timeout=120)


def test_torn_write_kill_resume_converges_to_clean_run(tmp_path):
    """The satellite scenario end to end: chaos kills the driver between
    append and fsync, the journal is torn, the re-run warns, resumes and
    finishes — and the merged canonical results are byte-identical to a
    run that was never interrupted."""
    chaos = ChaosSpec(torn_write=1.0, torn_style="partial",
                      state_dir=str(tmp_path / "ledger"),
                      only=("loopback(n=2)/none",))
    env = {"REPRO_CHAOS": chaos.to_env()}
    store, cache = tmp_path / "runs", tmp_path / "cache"

    first = run_sweep_subprocess(store, cache, env)
    assert first.returncode == TORN_EXIT, first.stderr

    # the journal really took damage
    run_ids = ResultStore(store).run_ids()
    assert len(run_ids) == 1
    run = ResultStore(store).open_run(run_ids[0])
    run.records()
    assert run.stats.corrupt == 1

    # re-run with chaos still armed: the ledger says the torn-write fault
    # already fired, so the sweep resumes and completes, warning on stderr
    second = run_sweep_subprocess(store, cache, env)
    assert second.returncode == 0, second.stderr
    assert "torn/corrupt journal line" in second.stderr

    clean = run_sweep_subprocess(tmp_path / "clean-runs", cache)
    assert clean.returncode == 0, clean.stderr

    chaotic = merge_runs(store, run_ids[0])
    pristine = merge_runs(tmp_path / "clean-runs", run_ids[0])
    assert chaotic.run.results_path.read_bytes() == \
        pristine.run.results_path.read_bytes()
    assert chaotic.run.manifest_path.read_bytes() == \
        pristine.run.manifest_path.read_bytes()
    assert chaotic.counters == {"ok": 2}


def test_afterwrite_kill_loses_nothing_on_resume(tmp_path):
    """torn_style='afterwrite' kills after the line is flushed: the
    record survives, so the resumed run skips the point entirely."""
    chaos = ChaosSpec(torn_write=1.0, torn_style="afterwrite",
                      state_dir=str(tmp_path / "ledger"),
                      only=("loopback(n=2)/none",))
    env = {"REPRO_CHAOS": chaos.to_env()}
    store, cache = tmp_path / "runs", tmp_path / "cache"

    first = run_sweep_subprocess(store, cache, env)
    assert first.returncode == TORN_EXIT
    run_ids = ResultStore(store).run_ids()
    run = ResultStore(store).open_run(run_ids[0])
    recs = run.records()
    assert run.stats.corrupt == 0
    assert [r["point_id"] for r in recs] == ["loopback(n=2)/none"]

    second = run_sweep_subprocess(store, cache, env)
    assert second.returncode == 0
    manifest = json.loads(run.manifest_path.read_text())
    assert manifest["counters"]["skipped_resume"] == 1


def test_crash_exit_codes_are_distinct():
    assert CRASH_EXIT != TORN_EXIT
    assert CRASH_EXIT != 0 and TORN_EXIT != 0
