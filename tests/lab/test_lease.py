"""Cache fill leases: single-fill dedup, crash takeover, eviction safety.

The property under test (ISSUE 10 tentpole, part 2): N concurrent
cold-starts of one cache key perform exactly one fill — across threads
sharing a handle and across OS processes sharing only the directory —
and a filler that dies holding its lease (worker SIGKILL) never wedges
the waiters: they detect the dead owner pid and take the lease over.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

from repro.lab.cache import SynthesisCache
from repro.lab.chaos import ChaosSpec


def _env_with(**kw):
    import pathlib
    root = pathlib.Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env.update(kw)
    env["PYTHONPATH"] = str(root / "src") + os.pathsep + str(root)
    return env


# ---- acquire/release basics ----------------------------------------------

def test_acquire_fill_and_release(tmp_path):
    cache = SynthesisCache(tmp_path / "c")
    lease = cache.acquire_fill("abcd1234")
    assert lease is not None and lease.owned
    assert lease.pid == os.getpid() and lease.epoch == 1
    assert lease.path.exists()
    info = json.loads(lease.path.read_text())
    assert info["key"] == "abcd1234" and info["pid"] == os.getpid()
    lease.release()
    assert not lease.path.exists()
    lease.release()  # idempotent


def test_acquire_returns_none_when_entry_already_filled(tmp_path):
    cache = SynthesisCache(tmp_path / "c")
    cache.put("feed0001", {"done": True})
    assert cache.acquire_fill("feed0001") is None


def test_disabled_cache_degrades_to_unleased_fill():
    cache = SynthesisCache(None)
    lease = cache.acquire_fill("k")
    assert lease is not None and not lease.owned and lease.path is None
    obj, filled = cache.get_or_fill("k", lambda: 41)
    assert obj == 41 and filled


def test_bounded_wait_degrades_to_duplicate_fill(tmp_path):
    """A wedged (live but never-releasing) owner must not deadlock the
    fleet: after the timeout the waiter fills unleased."""
    cache = SynthesisCache(tmp_path / "c")
    held = cache.acquire_fill("dead0002")
    assert held.owned
    t0 = time.monotonic()
    degraded = cache.acquire_fill("dead0002", timeout=0.3)
    assert time.monotonic() - t0 >= 0.3
    assert degraded is not None and not degraded.owned
    assert cache.stats.lease_waits == 1
    held.release()


# ---- stale-owner takeover -------------------------------------------------

def test_wedged_owner_is_taken_over_after_stale_window(tmp_path):
    """Even a *live* owner loses the lease once it exceeds the stale age
    (stuck in a syscall); the takeover bumps the epoch."""
    cache = SynthesisCache(tmp_path / "c", lease_stale_s=0.05)
    first = cache.acquire_fill("cafe0003")
    assert first.owned and first.epoch == 1
    time.sleep(0.1)
    second = cache.acquire_fill("cafe0003")
    assert second is not None and second.owned
    assert second.epoch == 2
    assert cache.stats.lease_takeovers == 1


def test_sigkilled_lease_holder_is_taken_over(tmp_path):
    """REPRO_CHAOS lease_kill: a subprocess claims the lease and SIGKILLs
    itself (the hook fires inside acquire_fill, right after the lease
    file lands) — exactly a crashed sweep worker. The parent must detect
    the dead owner pid, take over, and fill — well inside the stale
    window, which never applies to dead owners."""
    root = tmp_path / "shared"
    chaos = ChaosSpec(lease_kill=1.0, only=("9999aaaa",),
                      state_dir=str(tmp_path / "chaos"))
    victim = (
        "from repro.lab.cache import SynthesisCache\n"
        f"SynthesisCache({str(root)!r}).acquire_fill('9999aaaa')\n"
        "print('survived')\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", victim], capture_output=True, text=True,
        env=_env_with(REPRO_CHAOS=chaos.to_env()),
    )
    assert out.returncode == -signal.SIGKILL
    assert "survived" not in out.stdout

    cache = SynthesisCache(root)  # generous default stale window
    leaked = cache._lease_path("9999aaaa")
    assert leaked.exists()
    dead_pid = json.loads(leaked.read_text())["pid"]
    assert dead_pid != os.getpid()

    obj, filled = cache.get_or_fill("9999aaaa", lambda: "refilled")
    assert obj == "refilled" and filled
    assert cache.stats.lease_takeovers == 1
    assert not leaked.exists()


# ---- concurrent single-fill ----------------------------------------------

def test_thread_fleet_performs_exactly_one_fill(tmp_path):
    cache = SynthesisCache(tmp_path / "c")
    fills = []
    results = []
    barrier = threading.Barrier(6)

    def produce():
        fills.append(threading.get_ident())
        time.sleep(0.2)
        return {"value": 99}

    def worker():
        barrier.wait()
        obj, filled = cache.get_or_fill("beef0004", produce)
        results.append((obj, filled))

    threads = [threading.Thread(target=worker) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert len(fills) == 1
    assert sorted(f for _, f in results) == [False] * 5 + [True]
    assert all(obj == {"value": 99} for obj, _ in results)
    assert cache.stats.lease_waits >= 1


def test_process_fleet_performs_exactly_one_fill(tmp_path):
    """Cross-process cold start: 3 OS processes sharing only the cache
    directory race get_or_fill on one key; exactly one runs the producer
    (proved by marker files), the others wait out the lease and read."""
    root = tmp_path / "shared"
    markers = tmp_path / "markers"
    markers.mkdir()
    prog = (
        "import json, os, time\n"
        "from repro.lab.cache import SynthesisCache\n"
        f"c = SynthesisCache({str(root)!r})\n"
        "def produce():\n"
        f"    open(os.path.join({str(markers)!r}, str(os.getpid())),"
        " 'w').write('fill')\n"
        "    time.sleep(1.0)\n"
        "    return [7, 7, 7]\n"
        "obj, filled = c.get_or_fill('f00d0005', produce)\n"
        "print(json.dumps({'obj': obj, 'filled': filled,"
        " 'waits': c.stats.lease_waits}))\n"
    )
    procs = [subprocess.Popen([sys.executable, "-c", prog],
                              stdout=subprocess.PIPE, text=True,
                              env=_env_with())
             for _ in range(3)]
    outs = [json.loads(p.communicate(timeout=60)[0]) for p in procs]
    assert all(p.returncode == 0 for p in procs)
    assert len(list(markers.iterdir())) == 1
    assert sum(o["filled"] for o in outs) == 1
    assert all(o["obj"] == [7, 7, 7] for o in outs)
    # at least one loser waited on the winner's lease (a very slow
    # machine could start a worker after the fill completed — that
    # worker hits clean and never waits, hence >= 1, not == 2)
    assert sum(o["waits"] for o in outs) >= 1


# ---- eviction safety ------------------------------------------------------

def test_eviction_skips_entries_with_live_leases(tmp_path):
    """LRU must never evict an entry whose key is under a live fill lease
    (satellite a): the filler just wrote it and its waiters are about to
    read it."""
    cache = SynthesisCache(tmp_path / "c", max_entries=100)
    lease = cache.acquire_fill("aa000000")
    cache.put("aa000000", "protected")
    now = time.time()
    os.utime(cache._path("aa000000"), (now - 100, now - 100))  # oldest
    for i in range(4):
        cache.put(f"bb00000{i}", i)
        os.utime(cache._path(f"bb00000{i}"), (now + i, now + i))
    cache.max_entries = 3
    cache._evict()
    assert cache.get("aa000000") == "protected"  # survived as LRU victim
    assert len(cache) == 3

    lease.release()
    os.utime(cache._path("aa000000"), (now - 100, now - 100))  # re-age
    # (the surviving get() above LRU-touched it)
    cache.max_entries = 2
    cache._evict()  # without the lease the old entry is fair game
    assert cache.get("aa000000") is None


def test_dead_leases_are_garbage_collected_by_eviction(tmp_path):
    """A leaked lease file (dead pid) is reaped during the eviction scan
    rather than protecting its key forever."""
    cache = SynthesisCache(tmp_path / "c")
    path = cache._lease_path("dd000000")
    path.write_text(json.dumps(
        {"key": "dd000000", "pid": 2 ** 22 + 12345, "epoch": 1,
         "t": time.time()}))
    assert cache._live_lease_keys() == set()
    assert not path.exists()
    assert cache.stats.lease_takeovers == 1
