"""Sharding: deterministic partition, merge identity, error codes."""

import json

import pytest

from repro.errors import ReproError
from repro.lab.shard import (
    ShardError,
    ShardSpec,
    base_run_id,
    canonical_record,
    find_run_group,
    merge_runs,
)
from repro.lab.store import ResultStore


# ---- spec parsing and validation ----------------------------------------

def test_parse_and_labels():
    spec = ShardSpec.parse("2/8")
    assert (spec.index, spec.total) == (2, 8)
    assert spec.label == "s2of8"
    assert spec.run_id("sweep-abc") == "sweep-abc.s2of8"
    assert base_run_id("sweep-abc.s2of8") == "sweep-abc"
    assert base_run_id("sweep-abc") == "sweep-abc"


def test_bad_specs_rejected_with_codes():
    with pytest.raises(ShardError) as exc:
        ShardSpec(0, 4)
    assert exc.value.code == "RPR-W010"
    with pytest.raises(ShardError) as exc:
        ShardSpec(5, 4)
    assert exc.value.code == "RPR-W010"
    with pytest.raises(ShardError) as exc:
        ShardSpec.parse("2-8")
    assert exc.value.code == "RPR-W011"


def test_shards_partition_the_space_exactly():
    """Every token lands in exactly one shard, for any N."""
    tokens = [f"point-{i}" for i in range(200)]
    for total in (1, 2, 3, 7):
        shards = [ShardSpec(k, total) for k in range(1, total + 1)]
        selected = [s.select(tokens) for s in shards]
        combined = sorted(tok for part in selected for tok in part)
        assert combined == sorted(tokens)
        if total > 1:
            # the stable hash actually spreads work around
            assert all(part for part in selected)


def test_assignment_is_stable_across_processes():
    # stable_fingerprint is PYTHONHASHSEED-independent, so a fixed token
    # must land in a fixed shard forever (this pins the contract)
    spec = ShardSpec(1, 2)
    picks = [t for t in ("a", "b", "c", "d", "e") if spec.contains(t)]
    assert picks == spec.select(["a", "b", "c", "d", "e"])


def test_canonical_record_strips_volatile_fields():
    rec = {"point_id": "p", "status": "ok", "elapsed_s": 1.2,
           "cache_hit": True, "attempts": 3, "value": 7}
    assert canonical_record(rec) == {"point_id": "p", "status": "ok",
                                     "value": 7}


# ---- run-group resolution ------------------------------------------------

def write_run(store, run_id, records, manifest=None):
    run = store.open_run(run_id)
    for rec in records:
        run.append(rec)
    run.write_manifest(manifest or {"kind": "sweep", "run_id": run_id})
    return run


def test_find_run_group_exact_shard_and_prefix(tmp_path):
    store = ResultStore(tmp_path)
    write_run(store, "sweep-abc.s1of2", [])
    write_run(store, "sweep-abc.s2of2", [])
    base, members = find_run_group(tmp_path, "sweep-abc")
    assert base == "sweep-abc"
    assert members == ["sweep-abc.s1of2", "sweep-abc.s2of2"]
    # a shard id and a unique prefix resolve to the same group
    assert find_run_group(tmp_path, "sweep-abc.s1of2")[1] == members
    assert find_run_group(tmp_path, "sweep")[1] == members


def test_find_run_group_errors(tmp_path):
    store = ResultStore(tmp_path)
    write_run(store, "alpha-1", [])
    write_run(store, "alphb-2", [])
    with pytest.raises(ShardError) as exc:
        find_run_group(tmp_path, "alph")
    assert exc.value.code == "RPR-W012"
    with pytest.raises(ShardError) as exc:
        find_run_group(tmp_path, "nothing")
    assert exc.value.code == "RPR-W013"


# ---- merging -------------------------------------------------------------

def test_merge_of_shards_equals_merge_of_unsharded(tmp_path):
    records = [
        {"point_id": f"p{i}", "status": "ok", "value": i,
         "elapsed_s": 0.1 * i, "attempts": 1 + i % 2}
        for i in range(10)
    ]
    spec1, spec2 = ShardSpec(1, 2), ShardSpec(2, 2)
    sharded = ResultStore(tmp_path / "sharded")
    write_run(sharded, "run-x.s1of2",
              [r for r in records if spec1.contains(r["point_id"])],
              {"kind": "sweep", "name": "x", "fingerprint": "f"})
    write_run(sharded, "run-x.s2of2",
              [r for r in records if spec2.contains(r["point_id"])],
              {"kind": "sweep", "name": "x", "fingerprint": "f"})
    plain = ResultStore(tmp_path / "plain")
    write_run(plain, "run-x", records,
              {"kind": "sweep", "name": "x", "fingerprint": "f"})

    m1 = merge_runs(tmp_path / "sharded", "run-x")
    m2 = merge_runs(tmp_path / "plain", "run-x")
    assert m1.run.results_path.read_bytes() == \
        m2.run.results_path.read_bytes()
    assert m1.run.manifest_path.read_bytes() == \
        m2.run.manifest_path.read_bytes()
    assert len(m1.records) == 10
    assert m1.counters == {"ok": 10}


def test_merge_is_latest_wins_and_idempotent(tmp_path):
    store = ResultStore(tmp_path)
    write_run(store, "r-1", [
        {"point_id": "p0", "status": "failed", "error": "boom"},
        {"point_id": "p0", "status": "ok", "value": 1},
    ])
    first = merge_runs(tmp_path, "r-1")
    assert [r["status"] for r in first.records] == ["ok"]
    again = merge_runs(tmp_path, "r-1")
    assert again.run.results_path.read_bytes() == \
        first.run.results_path.read_bytes()
    # the .merged output itself is never folded back in as a source
    assert again.sources == ["r-1"]


def test_merge_counts_corrupt_lines(tmp_path):
    store = ResultStore(tmp_path)
    run = write_run(store, "r-2", [{"point_id": "p0", "status": "ok"}])
    with open(run.results_path, "a") as fh:
        fh.write('{"point_id": "p1", "status": "o')   # torn tail
    result = merge_runs(tmp_path, "r-2")
    assert result.corrupt == 1
    assert [r["point_id"] for r in result.records] == ["p0"]


def test_disagreeing_shard_manifests_rejected(tmp_path):
    store = ResultStore(tmp_path)
    write_run(store, "r-3.s1of2", [],
              {"kind": "sweep", "fingerprint": "aaa"})
    write_run(store, "r-3.s2of2", [],
              {"kind": "sweep", "fingerprint": "bbb"})
    with pytest.raises(ReproError) as exc:
        merge_runs(tmp_path, "r-3")
    assert exc.value.code == "RPR-W014"


def test_merged_results_are_sorted_and_canonically_encoded(tmp_path):
    store = ResultStore(tmp_path)
    write_run(store, "r-4", [
        {"point_id": "zz", "status": "ok", "elapsed_s": 9.0},
        {"point_id": "aa", "status": "ok", "cache_hit": False},
    ])
    result = merge_runs(tmp_path, "r-4")
    lines = result.run.results_path.read_text().splitlines()
    assert [json.loads(ln)["point_id"] for ln in lines] == ["aa", "zz"]
    for ln in lines:
        rec = json.loads(ln)
        assert "elapsed_s" not in rec and "cache_hit" not in rec
        assert ln == json.dumps(rec, sort_keys=True)
