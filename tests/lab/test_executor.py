"""LabExecutor: inline/pool equivalence, crash isolation, ordering."""

import os

import pytest

from repro.lab.executor import LabExecutor, PointOutcome


# -- module-level workers (must be picklable for the pool path) -----------

def square(x):
    return x * x


def flaky(x):
    if x == 3:
        raise ValueError(f"bad point {x}")
    return x + 100


def hard_crash(x):
    if x == 2:
        os._exit(13)  # simulates a segfaulting worker
    return x


def slow(x):
    if x == 1:
        import time
        time.sleep(30)
    return x


# -------------------------------------------------------------------------

def test_inline_map_preserves_order_and_values():
    outcomes = LabExecutor(jobs=1).map(square, [3, 1, 2])
    assert [oc.value for oc in outcomes] == [9, 1, 4]
    assert [oc.index for oc in outcomes] == [0, 1, 2]
    assert all(oc.ok for oc in outcomes)


def test_pool_matches_inline_results():
    """Same results at any --jobs: the determinism contract."""
    items = list(range(8))
    inline = LabExecutor(jobs=1).map(square, items)
    pooled = LabExecutor(jobs=4).map(square, items)
    assert [oc.value for oc in inline] == [oc.value for oc in pooled]
    assert [oc.index for oc in pooled] == list(range(8))


def test_worker_exception_is_isolated_inline():
    outcomes = LabExecutor(jobs=1).map(flaky, [1, 3, 5])
    assert [oc.status for oc in outcomes] == ["ok", "failed", "ok"]
    failed = outcomes[1]
    assert "ValueError: bad point 3" in failed.error
    assert "Traceback" in failed.detail
    assert outcomes[2].value == 105  # later points still ran


def test_worker_exception_is_isolated_in_pool():
    outcomes = LabExecutor(jobs=2).map(flaky, [1, 3, 5, 7])
    assert [oc.status for oc in outcomes] == ["ok", "failed", "ok", "ok"]
    assert [oc.value for oc in outcomes if oc.ok] == [101, 105, 107]


def test_hard_worker_crash_does_not_kill_the_sweep():
    """An os._exit worker breaks the pool; the executor must survive,
    mark the crashing point failed, and finish the rest."""
    outcomes = LabExecutor(jobs=2).map(hard_crash, [0, 1, 2, 3, 4])
    assert len(outcomes) == 5
    statuses = {oc.index: oc.status for oc in outcomes}
    assert statuses[2] == "failed" or "crash" in outcomes[2].error.lower() \
        or not outcomes[2].ok
    assert not outcomes[2].ok
    # every non-crashing point either completed or was explicitly marked
    assert all(oc.status in ("ok", "failed") for oc in outcomes)
    # the majority of points still produced values
    assert sum(1 for oc in outcomes if oc.ok) >= 3


def test_timeout_marks_point_not_sweep():
    ex = LabExecutor(jobs=2, timeout=1.0)
    outcomes = ex.map(slow, [0, 1, 2])
    statuses = [oc.status for oc in outcomes]
    assert statuses[1] == "timeout"
    assert "timed out" in outcomes[1].error
    assert statuses[0] == "ok"


def test_on_result_callback_sees_every_point():
    seen = []
    LabExecutor(jobs=1).map(square, [1, 2, 3],
                            on_result=lambda oc: seen.append(oc.index))
    assert sorted(seen) == [0, 1, 2]


def test_single_item_runs_inline_even_with_jobs():
    # avoids pool startup cost for trivial maps; lambda would not pickle,
    # proving the inline path was taken
    outcomes = LabExecutor(jobs=8).map(lambda x: x + 1, [41])
    assert outcomes == [PointOutcome(index=0, status="ok", value=42)]


def test_jobs_floor_is_one():
    assert LabExecutor(jobs=0).jobs == 1
    assert LabExecutor(jobs=-3).jobs == 1


@pytest.mark.parametrize("jobs", [1, 3])
def test_empty_items(jobs):
    assert LabExecutor(jobs=jobs).map(square, []) == []
