"""LabExecutor: inline/pool equivalence, crash isolation, ordering."""

import os

import pytest

from repro.lab.executor import LabExecutor, PointOutcome


# -- module-level workers (must be picklable for the pool path) -----------

def square(x):
    return x * x


def flaky(x):
    if x == 3:
        raise ValueError(f"bad point {x}")
    return x + 100


def hard_crash(x):
    if x == 2:
        os._exit(13)  # simulates a segfaulting worker
    return x


def slow(x):
    if x == 1:
        import time
        time.sleep(30)
    return x


# -------------------------------------------------------------------------

def test_inline_map_preserves_order_and_values():
    outcomes = LabExecutor(jobs=1).map(square, [3, 1, 2])
    assert [oc.value for oc in outcomes] == [9, 1, 4]
    assert [oc.index for oc in outcomes] == [0, 1, 2]
    assert all(oc.ok for oc in outcomes)


def test_pool_matches_inline_results():
    """Same results at any --jobs: the determinism contract."""
    items = list(range(8))
    inline = LabExecutor(jobs=1).map(square, items)
    pooled = LabExecutor(jobs=4).map(square, items)
    assert [oc.value for oc in inline] == [oc.value for oc in pooled]
    assert [oc.index for oc in pooled] == list(range(8))


def test_worker_exception_is_isolated_inline():
    outcomes = LabExecutor(jobs=1).map(flaky, [1, 3, 5])
    assert [oc.status for oc in outcomes] == ["ok", "failed", "ok"]
    failed = outcomes[1]
    assert "ValueError: bad point 3" in failed.error
    assert "Traceback" in failed.detail
    assert outcomes[2].value == 105  # later points still ran


def test_worker_exception_is_isolated_in_pool():
    outcomes = LabExecutor(jobs=2).map(flaky, [1, 3, 5, 7])
    assert [oc.status for oc in outcomes] == ["ok", "failed", "ok", "ok"]
    assert [oc.value for oc in outcomes if oc.ok] == [101, 105, 107]


def test_hard_worker_crash_does_not_kill_the_sweep():
    """An os._exit worker breaks the pool; the executor must survive,
    mark the crashing point failed, and finish the rest."""
    outcomes = LabExecutor(jobs=2).map(hard_crash, [0, 1, 2, 3, 4])
    assert len(outcomes) == 5
    statuses = {oc.index: oc.status for oc in outcomes}
    assert statuses[2] == "failed" or "crash" in outcomes[2].error.lower() \
        or not outcomes[2].ok
    assert not outcomes[2].ok
    # every non-crashing point either completed or was explicitly marked
    assert all(oc.status in ("ok", "failed") for oc in outcomes)
    # the majority of points still produced values
    assert sum(1 for oc in outcomes if oc.ok) >= 3


def test_timeout_marks_point_not_sweep():
    ex = LabExecutor(jobs=2, timeout=1.0)
    outcomes = ex.map(slow, [0, 1, 2])
    statuses = [oc.status for oc in outcomes]
    assert statuses[1] == "timeout"
    assert "timed out" in outcomes[1].error
    assert statuses[0] == "ok"


def test_on_result_callback_sees_every_point():
    seen = []
    LabExecutor(jobs=1).map(square, [1, 2, 3],
                            on_result=lambda oc: seen.append(oc.index))
    assert sorted(seen) == [0, 1, 2]


def test_single_item_runs_inline_even_with_jobs():
    # avoids pool startup cost for trivial maps; lambda would not pickle,
    # proving the inline path was taken
    outcomes = LabExecutor(jobs=8).map(lambda x: x + 1, [41])
    assert outcomes == [PointOutcome(index=0, status="ok", value=42)]


def test_jobs_floor_is_one():
    assert LabExecutor(jobs=0).jobs == 1
    assert LabExecutor(jobs=-3).jobs == 1


@pytest.mark.parametrize("jobs", [1, 3])
def test_empty_items(jobs):
    assert LabExecutor(jobs=jobs).map(square, []) == []


# ---- campaign-fabric behaviors (retry, kill, hedge) ----------------------

def crash_once(args):
    """Crash hard on the first execution of the marked item, succeed
    after: the marker file is the cross-process attempt ledger."""
    value, marker = args
    if value == 2 and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("fired")
        os._exit(13)
    return value * 10


def sleep_forever(x):
    if x == 1:
        import time
        time.sleep(600)
    return x


def write_pid_then_hang(args):
    value, pid_file = args
    if value == 1:
        with open(pid_file, "w") as fh:
            fh.write(str(os.getpid()))
        import time
        time.sleep(600)
    return value


def straggle_once(args):
    """Sleep only on the first execution of the marked item, so the hedge
    twin (or a retry) returns promptly."""
    value, marker = args
    if value == 1:
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(fd)
        except FileExistsError:
            return value + 100   # second execution: fast
        import time
        time.sleep(600)
    return value + 100


def test_timed_out_worker_is_hard_killed(tmp_path):
    """Regression for the stuck-worker leak: a point past its deadline
    must be RPR-E002-coded, its worker process SIGKILLed, and shutdown
    must not block on the abandoned worker."""
    import time as _time

    pid_file = str(tmp_path / "stuck.pid")
    ex = LabExecutor(jobs=2, timeout=1.0)
    t0 = _time.monotonic()
    outcomes = ex.map(write_pid_then_hang,
                      [(0, pid_file), (1, pid_file), (2, pid_file)])
    wall = _time.monotonic() - t0
    # a blocking pool shutdown would wait out the full 600 s sleep
    assert wall < 30
    assert [oc.status for oc in outcomes] == ["ok", "timeout", "ok"]
    codes = {d.get("code") for d in outcomes[1].diagnostics}
    assert "RPR-E002" in codes
    assert ex.stats.timeouts == 1
    assert ex.stats.worker_kills == 1
    # the stuck worker is actually dead, not orphaned
    pid = int(open(pid_file).read())
    deadline = _time.monotonic() + 10
    while _time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            break
        _time.sleep(0.1)
    else:
        raise AssertionError(f"stuck worker {pid} still alive")


def test_crash_retry_recovers_in_pool(tmp_path):
    from repro.lab.retry import RetryPolicy

    marker = str(tmp_path / "crashed.marker")
    policy = RetryPolicy(max_attempts=3, base_delay=0.01, breaker=None)
    ex = LabExecutor(jobs=2, retry=policy)
    outcomes = ex.map(crash_once, [(i, marker) for i in range(5)])
    assert [oc.status for oc in outcomes] == ["ok"] * 5
    assert outcomes[2].value == 20
    # Pool-break blame is a heuristic: when another point is still in
    # flight at crash time it may absorb the retry instead of point 2.
    # What IS deterministic: exactly one crash, one journaled retry.
    assert sorted(oc.attempts for oc in outcomes) == [1, 1, 1, 1, 2]
    assert ex.stats.retries >= 1


def test_timeout_retry_recovers_inline(tmp_path):
    from repro.lab.retry import RetryPolicy

    marker = str(tmp_path / "slow.marker")
    policy = RetryPolicy(max_attempts=2, base_delay=0.01, breaker=None)
    ex = LabExecutor(jobs=2, timeout=2.0, retry=policy)
    outcomes = ex.map(straggle_once, [(i, marker) for i in range(3)])
    assert [oc.status for oc in outcomes] == ["ok"] * 3
    assert outcomes[1].attempts == 2
    assert ex.stats.timeouts == 1


def test_permanent_failures_are_not_retried():
    from repro.lab.retry import RetryPolicy

    policy = RetryPolicy(max_attempts=3, base_delay=0.01, breaker=None)
    ex = LabExecutor(jobs=1, retry=policy)
    outcomes = ex.map(flaky, [1, 3, 5])
    assert [oc.status for oc in outcomes] == ["ok", "failed", "ok"]
    # ValueError carries a non-transient diagnostic: exactly one attempt
    assert outcomes[1].attempts == 1
    assert ex.stats.retries == 0


def test_hedging_rescues_stragglers(tmp_path):
    import time as _time

    marker = str(tmp_path / "straggler.marker")
    ex = LabExecutor(jobs=4, hedge=True, hedge_factor=2.0,
                     hedge_min_wait=0.5, hedge_min_samples=3)
    t0 = _time.monotonic()
    outcomes = ex.map(straggle_once, [(i, marker) for i in range(8)])
    wall = _time.monotonic() - t0
    assert wall < 60          # far below the 600 s straggler sleep
    assert [oc.status for oc in outcomes] == ["ok"] * 8
    assert outcomes[1].value == 101
    assert ex.stats.hedges >= 1
    assert ex.stats.hedge_wins >= 1
