"""Incremental per-process synthesis (ISSUE 10 tentpole).

The contract pinned here: assembling an app from cached per-process
artifacts is *indistinguishable* from a monolithic resynthesis — same
report bytes, same assertion decode table, same execution — while
rebuilding only the processes whose fingerprints changed.
"""

import json
import subprocess
import sys

from repro.apps.pipeline import build_pipeline, expected_output
from repro.core.synth import SynthesisOptions, synthesize
from repro.lab.cache import SynthesisCache, process_cache_key
from repro.lab.incremental import synthesize_incremental
from repro.platform.report import point_summary
from repro.runtime.hwexec import execute


def report_bytes(image) -> bytes:
    """The journaled point record, byte-exactly as a sweep would store it."""
    return json.dumps(point_summary(image), sort_keys=True).encode()


def decode_table(image):
    return sorted(
        (stream, dec.mode, word, name, site.ordinal, site.expr_text)
        for stream, dec in image.assert_decode.items()
        for word, (name, site) in dec.table.items())


# ---- byte-identity with full resynthesis ---------------------------------

def test_cold_incremental_matches_full_at_every_level(tmp_path):
    for level in ("none", "unoptimized", "optimized"):
        cache = SynthesisCache(tmp_path / level)
        inc, info = synthesize_incremental(build_pipeline(3), level,
                                           cache=cache)
        full = synthesize(build_pipeline(3), level)
        assert report_bytes(inc) == report_bytes(full), level
        assert decode_table(inc) == decode_table(full), level
        assert info["resyntheses"] == info["processes"] == 3
        assert info["partial_rebuild"] is False


def test_warm_rerun_rebuilds_nothing_and_matches(tmp_path):
    cache = SynthesisCache(tmp_path / "c")
    cold, _ = synthesize_incremental(build_pipeline(3), cache=cache)
    warm, info = synthesize_incremental(build_pipeline(3), cache=cache)
    assert info == {"processes": 3, "proc_hits": 3, "proc_misses": 0,
                    "resyntheses": 0, "partial_rebuild": False}
    assert report_bytes(warm) == report_bytes(cold)
    assert decode_table(warm) == decode_table(cold)


def test_disabled_cache_degrades_to_full_resynthesis():
    image, info = synthesize_incremental(build_pipeline(2),
                                         cache=SynthesisCache(None))
    assert info["resyntheses"] == 2 and info["proc_hits"] == 0
    assert report_bytes(image) == report_bytes(synthesize(build_pipeline(2)))


# ---- edit-one-process (the seam's raison d'être) -------------------------

def test_edit_one_process_rebuilds_exactly_that_process(tmp_path):
    cache = SynthesisCache(tmp_path / "c")
    synthesize_incremental(build_pipeline(3), cache=cache)

    edited = {1: 7}
    inc, info = synthesize_incremental(build_pipeline(3, deltas=edited),
                                       cache=cache)
    assert info == {"processes": 3, "proc_hits": 2, "proc_misses": 1,
                    "resyntheses": 1, "partial_rebuild": True}
    assert cache.stats.partial_rebuilds == 1

    full = synthesize(build_pipeline(3, deltas=edited))
    assert report_bytes(inc) == report_bytes(full)
    assert decode_table(inc) == decode_table(full)

    # the spliced image must also *run* correctly end to end
    data = list(range(1, 17))
    res = execute(synthesize_incremental(
        build_pipeline(3, deltas=edited, data=data), cache=cache)[0])
    assert res.completed
    assert list(res.outputs["drain"]) == expected_output(data, 3, edited)


def test_edit_first_process_spares_later_stages(tmp_path):
    """Delta edits don't change assertion counts, so later stages' global
    code bases — and therefore their fingerprints — must not shift."""
    cache = SynthesisCache(tmp_path / "c")
    synthesize_incremental(build_pipeline(3), cache=cache)
    _, info = synthesize_incremental(build_pipeline(3, deltas={0: 9}),
                                     cache=cache)
    assert info["resyntheses"] == 1 and info["proc_hits"] == 2


# ---- fingerprint stability ------------------------------------------------

def test_process_key_independent_of_sibling_processes():
    """A process's fingerprint is a pure function of its own IR, options
    slice and code base — never of its siblings or the app wiring. This
    is what lets a 5-stage pipeline reuse a 3-stage pipeline's shared
    prefix artifacts (and loopback n=3 reuse n=2's)."""
    a = build_pipeline(3)
    b = build_pipeline(5)
    ka = process_cache_key("stage0", str(a.processes["stage0"].func),
                           "optimized", SynthesisOptions(), 1)
    kb = process_cache_key("stage0", str(b.processes["stage0"].func),
                           "optimized", SynthesisOptions(), 1)
    assert ka == kb


def test_cross_pipeline_prefix_reuse(tmp_path):
    """The sibling-independence property, end to end: a longer pipeline
    cold-starts into a cache warmed by a shorter one and reuses every
    shared-prefix artifact."""
    cache = SynthesisCache(tmp_path / "c")
    synthesize_incremental(build_pipeline(3), cache=cache)
    _, info = synthesize_incremental(build_pipeline(5), cache=cache)
    assert info == {"processes": 5, "proc_hits": 3, "proc_misses": 2,
                    "resyntheses": 2, "partial_rebuild": True}


def test_code_base_is_part_of_the_key():
    ir = str(build_pipeline(1).processes["stage0"].func)
    assert process_cache_key("stage0", ir, "optimized", code_base=1) != \
        process_cache_key("stage0", ir, "optimized", code_base=2)


def test_process_key_is_stable_across_interpreter_runs():
    """PYTHONHASHSEED must not leak into the per-process fingerprint
    (satellite c): two fresh interpreters with different seeds and the
    parent process all derive the same key."""
    prog = (
        "import sys; sys.path.insert(0, 'src')\n"
        "from repro.apps.pipeline import build_pipeline\n"
        "from repro.lab.cache import process_cache_key\n"
        "app = build_pipeline(2)\n"
        "print(process_cache_key('stage1',"
        " str(app.processes['stage1'].func), 'optimized', code_base=2))\n"
    )
    keys = set()
    for seed in ("0", "4321"):
        out = subprocess.run(
            [sys.executable, "-c", prog], capture_output=True, text=True,
            check=True, cwd=str(_repo_root()),
            env=_env_with(PYTHONHASHSEED=seed),
        )
        keys.add(out.stdout.strip())
    app = build_pipeline(2)
    keys.add(process_cache_key("stage1", str(app.processes["stage1"].func),
                               "optimized", code_base=2))
    assert len(keys) == 1


def _repo_root():
    import pathlib
    return pathlib.Path(__file__).resolve().parents[2]


def _env_with(**kw):
    import os
    env = dict(os.environ)
    env.update(kw)
    env["PYTHONPATH"] = str(_repo_root() / "src") + os.pathsep + \
        str(_repo_root())
    return env
