"""Append-only JSONL result store and run manifests."""

import json

from repro.lab.store import ResultStore, RunHandle


def test_append_and_read_back(tmp_path):
    run = ResultStore(tmp_path).open_run("r1")
    run.append({"point_id": "a", "status": "ok", "v": 1})
    run.append({"point_id": "b", "status": "failed", "error": "boom"})
    recs = run.records()
    assert [r["point_id"] for r in recs] == ["a", "b"]
    assert recs[0]["v"] == 1


def test_records_survive_reopen(tmp_path):
    store = ResultStore(tmp_path)
    store.open_run("r1").append({"point_id": "a", "status": "ok"})
    # a fresh handle (new process in real life) sees the same journal
    assert store.open_run("r1").records() == [
        {"point_id": "a", "status": "ok"}
    ]


def test_torn_final_line_is_skipped(tmp_path):
    """A hard kill mid-write leaves a torn last line; it must not poison
    the journal."""
    run = ResultStore(tmp_path).open_run("r1")
    run.append({"point_id": "a", "status": "ok"})
    with open(run.results_path, "a") as fh:
        fh.write('{"point_id": "b", "stat')  # no newline, invalid JSON
    assert [r["point_id"] for r in run.records()] == ["a"]


def test_corrupt_lines_are_counted_in_stats(tmp_path):
    """Satellite contract: torn lines are not just skipped, they are
    *counted* so drivers can warn that the journal took damage."""
    run = ResultStore(tmp_path).open_run("r1")
    run.append({"point_id": "a", "status": "ok"})
    with open(run.results_path, "a") as fh:
        fh.write("not json at all\n")
        fh.write('{"point_id": "b", "stat')  # torn tail
    recs = run.records()
    assert run.stats.records == 1
    assert run.stats.corrupt == 2
    assert run.stats.as_dict() == {"records": 1, "corrupt": 2}
    assert [r["point_id"] for r in recs] == ["a"]
    # a clean scan resets the counters
    run2 = ResultStore(tmp_path).open_run("clean")
    run2.append({"point_id": "a", "status": "ok"})
    run2.records()
    assert run2.stats.corrupt == 0


def test_append_heals_torn_tail_before_writing(tmp_path):
    """Appending after a mid-write kill must not fuse the new record
    onto the unterminated torn fragment."""
    store = ResultStore(tmp_path)
    run = store.open_run("r1")
    run.append({"point_id": "a", "status": "ok"})
    with open(run.results_path, "a") as fh:
        fh.write('{"point_id": "b", "stat')  # killed mid-write, no \n
    resumed = store.open_run("r1")  # fresh handle, as on resume
    resumed.append({"point_id": "b", "status": "ok"})
    recs = resumed.records()
    assert [r["point_id"] for r in recs] == ["a", "b"]
    assert resumed.stats.corrupt == 1  # the fragment, isolated


def test_completed_ids_only_counts_ok(tmp_path):
    run = ResultStore(tmp_path).open_run("r1")
    run.append({"point_id": "a", "status": "ok"})
    run.append({"point_id": "b", "status": "failed"})
    run.append({"point_id": "c", "status": "timeout"})
    assert run.completed_ids() == {"a"}
    assert run.completed_ids(include_failed=True) == {"a", "b", "c"}


def test_retry_supersedes_earlier_failure(tmp_path):
    run = ResultStore(tmp_path).open_run("r1")
    run.append({"point_id": "a", "status": "failed"})
    run.append({"point_id": "a", "status": "ok"})
    assert run.completed_ids() == {"a"}


def test_manifest_roundtrip_and_atomicity(tmp_path):
    run = ResultStore(tmp_path).open_run("r1")
    assert run.read_manifest() == {}
    run.write_manifest({"status": "running", "counters": {"done": 0}})
    run.write_manifest({"status": "completed", "counters": {"done": 4}})
    assert run.read_manifest()["status"] == "completed"
    # no temp droppings left behind
    assert sorted(p.name for p in run.dir.iterdir()) == ["manifest.json"]
    # and it is valid indented JSON on disk
    text = run.manifest_path.read_text()
    assert json.loads(text)["counters"]["done"] == 4


def test_run_ids_lists_only_real_runs(tmp_path):
    store = ResultStore(tmp_path)
    store.open_run("a").append({"point_id": "x", "status": "ok"})
    store.open_run("b").write_manifest({"status": "running"})
    RunHandle(store.root, "empty")  # dir exists but holds nothing
    (store.root / "stray-file").write_text("not a run")
    assert store.run_ids() == ["a", "b"]


def test_same_run_id_reopens_same_directory(tmp_path):
    store = ResultStore(tmp_path)
    first = store.open_run("sweep-cafe")
    first.append({"point_id": "p", "status": "ok"})
    second = store.open_run("sweep-cafe")
    assert second.dir == first.dir
    assert second.completed_ids() == {"p"}
