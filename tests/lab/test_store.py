"""Append-only JSONL result store and run manifests."""

import json

from repro.lab.store import ResultStore, RunHandle


def test_append_and_read_back(tmp_path):
    run = ResultStore(tmp_path).open_run("r1")
    run.append({"point_id": "a", "status": "ok", "v": 1})
    run.append({"point_id": "b", "status": "failed", "error": "boom"})
    recs = run.records()
    assert [r["point_id"] for r in recs] == ["a", "b"]
    assert recs[0]["v"] == 1


def test_records_survive_reopen(tmp_path):
    store = ResultStore(tmp_path)
    store.open_run("r1").append({"point_id": "a", "status": "ok"})
    # a fresh handle (new process in real life) sees the same journal
    assert store.open_run("r1").records() == [
        {"point_id": "a", "status": "ok"}
    ]


def test_torn_final_line_is_skipped(tmp_path):
    """A hard kill mid-write leaves a torn last line; it must not poison
    the journal."""
    run = ResultStore(tmp_path).open_run("r1")
    run.append({"point_id": "a", "status": "ok"})
    with open(run.results_path, "a") as fh:
        fh.write('{"point_id": "b", "stat')  # no newline, invalid JSON
    assert [r["point_id"] for r in run.records()] == ["a"]


def test_corrupt_lines_are_counted_in_stats(tmp_path):
    """Satellite contract: torn lines are not just skipped, they are
    *counted* so drivers can warn that the journal took damage."""
    run = ResultStore(tmp_path).open_run("r1")
    run.append({"point_id": "a", "status": "ok"})
    with open(run.results_path, "a") as fh:
        fh.write("not json at all\n")
        fh.write('{"point_id": "b", "stat')  # torn tail
    recs = run.records()
    assert run.stats.records == 1
    assert run.stats.corrupt == 2
    assert run.stats.as_dict() == {"records": 1, "corrupt": 2}
    assert [r["point_id"] for r in recs] == ["a"]
    # a clean scan resets the counters
    run2 = ResultStore(tmp_path).open_run("clean")
    run2.append({"point_id": "a", "status": "ok"})
    run2.records()
    assert run2.stats.corrupt == 0


def test_append_heals_torn_tail_before_writing(tmp_path):
    """Appending after a mid-write kill must not fuse the new record
    onto the unterminated torn fragment."""
    store = ResultStore(tmp_path)
    run = store.open_run("r1")
    run.append({"point_id": "a", "status": "ok"})
    with open(run.results_path, "a") as fh:
        fh.write('{"point_id": "b", "stat')  # killed mid-write, no \n
    resumed = store.open_run("r1")  # fresh handle, as on resume
    resumed.append({"point_id": "b", "status": "ok"})
    recs = resumed.records()
    assert [r["point_id"] for r in recs] == ["a", "b"]
    assert resumed.stats.corrupt == 1  # the fragment, isolated


def test_torn_batched_record_heals_to_last_complete_record(tmp_path):
    """Batched execution packs N lane results into ONE journal line, so a
    mid-write kill now tears a much bigger record. The torn multi-lane
    line must be isolated exactly like a scalar one: every *complete*
    record before it survives (including earlier full batches), the torn
    batch is counted corrupt, and resume re-appends it cleanly."""

    def batch_record(pid, n_lanes, status="ok"):
        return {
            "point_id": pid, "status": status, "batch_lanes": n_lanes,
            "lanes": [
                {"lane": i, "reason": "COMPLETED", "cycles": 40 + i,
                 "outputs": {"drain": list(range(16))}}
                for i in range(n_lanes)
            ],
        }

    store = ResultStore(tmp_path)
    run = store.open_run("r1")
    run.append({"point_id": "scalar", "status": "ok"})
    run.append(batch_record("batch-a", 8))
    # kill mid-write: the 64-lane record is torn inside lane 3's payload
    torn = json.dumps(batch_record("batch-b", 64), sort_keys=True)
    with open(run.results_path, "a") as fh:
        fh.write(torn[:len(torn) // 3])  # no newline, invalid JSON
    recs = run.records()
    # heals to the last complete record — the full 8-lane batch, with
    # every lane intact — not to an empty or truncated journal
    assert [r["point_id"] for r in recs] == ["scalar", "batch-a"]
    assert len(recs[1]["lanes"]) == 8
    assert recs[1]["lanes"][7]["cycles"] == 47
    assert run.stats.corrupt == 1
    assert run.completed_ids() == {"scalar", "batch-a"}

    # resume: a fresh handle re-appends the lost batch without fusing it
    # onto the torn fragment
    resumed = store.open_run("r1")
    resumed.append(batch_record("batch-b", 64))
    recs = resumed.records()
    assert [r["point_id"] for r in recs] == ["scalar", "batch-a", "batch-b"]
    assert len(recs[2]["lanes"]) == 64
    assert resumed.stats.corrupt == 1  # the fragment stays isolated


def test_completed_ids_only_counts_ok(tmp_path):
    run = ResultStore(tmp_path).open_run("r1")
    run.append({"point_id": "a", "status": "ok"})
    run.append({"point_id": "b", "status": "failed"})
    run.append({"point_id": "c", "status": "timeout"})
    assert run.completed_ids() == {"a"}
    assert run.completed_ids(include_failed=True) == {"a", "b", "c"}


def test_retry_supersedes_earlier_failure(tmp_path):
    run = ResultStore(tmp_path).open_run("r1")
    run.append({"point_id": "a", "status": "failed"})
    run.append({"point_id": "a", "status": "ok"})
    assert run.completed_ids() == {"a"}


def test_manifest_roundtrip_and_atomicity(tmp_path):
    run = ResultStore(tmp_path).open_run("r1")
    assert run.read_manifest() == {}
    run.write_manifest({"status": "running", "counters": {"done": 0}})
    run.write_manifest({"status": "completed", "counters": {"done": 4}})
    assert run.read_manifest()["status"] == "completed"
    # no temp droppings left behind
    assert sorted(p.name for p in run.dir.iterdir()) == ["manifest.json"]
    # and it is valid indented JSON on disk
    text = run.manifest_path.read_text()
    assert json.loads(text)["counters"]["done"] == 4


def test_run_ids_lists_only_real_runs(tmp_path):
    store = ResultStore(tmp_path)
    store.open_run("a").append({"point_id": "x", "status": "ok"})
    store.open_run("b").write_manifest({"status": "running"})
    RunHandle(store.root, "empty")  # dir exists but holds nothing
    (store.root / "stray-file").write_text("not a run")
    assert store.run_ids() == ["a", "b"]


def test_same_run_id_reopens_same_directory(tmp_path):
    store = ResultStore(tmp_path)
    first = store.open_run("sweep-cafe")
    first.append({"point_id": "p", "status": "ok"})
    second = store.open_run("sweep-cafe")
    assert second.dir == first.dir
    assert second.completed_ids() == {"p"}
