"""End-to-end sweeps: cross products, caching, resume, interruption, CLI."""

import pytest

import repro.lab.sweep as sweep_mod
from repro.cli import main
from repro.lab.shard import VOLATILE_RECORD_FIELDS
from repro.lab.sweep import (
    AppSpec,
    SweepError,
    SweepSpec,
    evaluate_point,
    run_sweep,
)

SMALL_SRC = """
void p(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x < 100);
    co_stream_write(output, x + 1);
  }
  co_stream_close(output);
}
"""


def small_spec(name="unit", levels=("none", "optimized")):
    return SweepSpec.cross(
        name,
        [AppSpec.make("loopback", n=2), AppSpec.make("loopback", n=3)],
        levels=levels,
    )


def quiet_sweep(spec, tmp_path, **kw):
    kw.setdefault("store_root", tmp_path / "runs")
    kw.setdefault("cache_root", tmp_path / "cache")
    kw.setdefault("progress", False)
    return run_sweep(spec, **kw)


# ---- spec construction ---------------------------------------------------

def test_cross_product_shape_and_ids():
    spec = SweepSpec.cross(
        "s", [AppSpec.make("loopback", n=2)],
        levels=("none", "optimized"), variants=("default", "noshare"),
    )
    assert [p.point_id for p in spec.points] == [
        "loopback(n=2)/none",
        "loopback(n=2)/none/noshare",
        "loopback(n=2)/optimized",
        "loopback(n=2)/optimized/noshare",
    ]


def test_bad_level_and_variant_and_kind_rejected():
    with pytest.raises(SweepError, match="bad assertion level"):
        SweepSpec.cross("s", [AppSpec.make("loopback")], levels=("max",))
    with pytest.raises(SweepError, match="unknown option variant"):
        SweepSpec.cross("s", [AppSpec.make("loopback")],
                        variants=("turbo",))
    with pytest.raises(SweepError, match="unknown app kind"):
        AppSpec.make("fft")


def test_run_id_is_content_addressed():
    assert small_spec().run_id() == small_spec().run_id()
    assert small_spec().run_id() != \
        small_spec(levels=("none", "unoptimized")).run_id()


def test_csource_app_kind_builds():
    spec = AppSpec.make("csource", source=SMALL_SRC, feed=(1, 2, 3))
    app = spec.build()
    assert "in" in app.streams and "out" in app.streams


# ---- execution, caching, manifest ---------------------------------------

def test_sweep_completes_and_journal_matches(tmp_path):
    spec = small_spec()
    result = quiet_sweep(spec, tmp_path, jobs=1)
    assert result.ok
    m = result.manifest
    assert m["status"] == "completed"
    # per-process incremental accounting: loopback(n=2) cold-fills both
    # stage artifacts at each level (4 resyntheses); loopback(n=3) then
    # reuses stage0/stage1 (identical IR + code base) and rebuilds only
    # stage2 — a partial rebuild per level
    assert m["counters"] == {
        "total": 4, "skipped_resume": 0, "done": 4, "failed": 0,
        "retried": 0, "cache_hits": 0, "cache_misses": 4,
        "cache_corrupt": 0, "journal_corrupt": 0,
        "resyntheses": 6, "proc_hits": 4, "proc_misses": 6,
        "partial_rebuilds": 2, "lease_waits": 0, "lease_takeovers": 0,
    }
    assert m["wall_time_s"] >= 0
    assert set(result.records) == {p.point_id for p in spec.points}
    for rec in result.records.values():
        assert rec["status"] == "ok"
        assert rec["comb_aluts"] > 0 and rec["fmax_mhz"] > 0
    # the rendered table shows every point with real numbers
    table = result.render()
    for p in spec.points:
        assert p.point_id in table


def test_rerun_is_all_cache_hits_and_skips_nothing_new(tmp_path):
    spec = small_spec()
    quiet_sweep(spec, tmp_path, jobs=1)
    again = quiet_sweep(spec, tmp_path, jobs=1, resume=False)
    c = again.manifest["counters"]
    assert c["done"] == 4 and c["cache_hits"] == 4 \
        and c["cache_misses"] == 0


def test_resume_skips_completed_points(tmp_path):
    """Drop half the journal (as an interruption would) and rerun: only
    the missing points are evaluated."""
    spec = small_spec()
    first = quiet_sweep(spec, tmp_path, jobs=1)
    lines = first.run.results_path.read_text().splitlines()
    first.run.results_path.write_text("\n".join(lines[:2]) + "\n")
    second = quiet_sweep(spec, tmp_path, jobs=1)
    c = second.manifest["counters"]
    assert c["skipped_resume"] == 2 and c["done"] == 2
    assert c["failed"] == 0
    assert second.ok
    assert set(second.records) == {p.point_id for p in spec.points}


def test_worker_failure_is_recorded_and_retried_on_resume(tmp_path,
                                                          monkeypatch):
    spec = small_spec()
    victim = spec.points[2].point_id
    real = sweep_mod.synthesize_incremental

    def sabotaged(app, assertions="optimized", **kw):
        if app.name == "loopback3" and assertions == "none":
            raise ValueError("injected synthesis failure")
        return real(app, assertions, **kw)

    monkeypatch.setattr(sweep_mod, "synthesize_incremental", sabotaged)
    first = quiet_sweep(spec, tmp_path, jobs=1)
    assert not first.ok
    assert first.manifest["status"] == "completed-with-failures"
    assert first.manifest["counters"]["failed"] == 1
    assert first.records[victim]["status"] == "failed"
    assert "injected synthesis failure" in first.records[victim]["error"]

    monkeypatch.setattr(sweep_mod, "synthesize_incremental", real)
    second = quiet_sweep(spec, tmp_path, jobs=1)
    c = second.manifest["counters"]
    # only the failed point re-ran; the three good ones were skipped
    assert c["skipped_resume"] == 3 and c["done"] == 1
    assert second.ok
    assert second.records[victim]["status"] == "ok"


def test_interrupt_finalizes_manifest_then_resume_completes(tmp_path,
                                                            monkeypatch):
    """SIGINT mid-sweep: manifest says interrupted, journal keeps the
    finished points, and the rerun completes only the missing ones."""
    spec = small_spec()
    real = sweep_mod.synthesize_incremental
    seen = []

    def interrupting(app, assertions="optimized", **kw):
        seen.append(1)
        if len(seen) == 3:
            raise KeyboardInterrupt
        return real(app, assertions, **kw)

    monkeypatch.setattr(sweep_mod, "synthesize_incremental", interrupting)
    with pytest.raises(KeyboardInterrupt):
        quiet_sweep(spec, tmp_path, jobs=1)

    store_runs = tmp_path / "runs"
    from repro.lab.store import ResultStore
    run = ResultStore(store_runs).open_run(spec.run_id())
    assert run.read_manifest()["status"] == "interrupted"
    assert len(run.completed_ids()) == 2  # two points landed before SIGINT

    monkeypatch.setattr(sweep_mod, "synthesize_incremental", real)
    resumed = quiet_sweep(spec, tmp_path, jobs=1)
    c = resumed.manifest["counters"]
    assert c["skipped_resume"] == 2 and c["done"] == 2
    assert resumed.ok and resumed.manifest["status"] == "completed"


def test_parallel_sweep_matches_serial(tmp_path):
    """jobs=2 must produce the same per-point numbers as jobs=1."""
    spec = small_spec()
    serial = quiet_sweep(spec, tmp_path / "a", jobs=1)
    pooled = quiet_sweep(spec, tmp_path / "b", jobs=2)
    # Points share process artifacts, so which point records the fill
    # (proc miss) vs the lease-wait (proc hit) depends on worker
    # scheduling under jobs>1 — exactly the fields merge strips.
    strip = VOLATILE_RECORD_FIELDS
    for pid in (p.point_id for p in spec.points):
        a = {k: v for k, v in serial.records[pid].items() if k not in strip}
        b = {k: v for k, v in pooled.records[pid].items() if k not in strip}
        assert a == b, pid
    assert serial.render() == pooled.render()


def test_evaluate_point_record_shape(tmp_path):
    spec = small_spec()
    rec = evaluate_point((spec.points[0], None))
    assert rec["point_id"] == spec.points[0].point_id
    assert rec["cache_hit"] is False
    for field in ("processes", "comb_aluts", "registers", "bram_bits",
                  "fmax_mhz", "assertion_level", "device"):
        assert field in rec


# ---- sharding and journal damage ----------------------------------------

def test_sharded_sweep_merge_is_byte_identical_to_unsharded(tmp_path):
    """The tentpole identity: run each shard into the same store, merge,
    and compare against the merged unsharded run — byte for byte."""
    from repro.lab.shard import ShardSpec, merge_runs

    spec = small_spec()
    shard_points = []
    for k in (1, 2):
        res = quiet_sweep(spec, tmp_path, jobs=1, shard=ShardSpec(k, 2))
        assert res.ok
        assert res.manifest["shard"] == {"index": k, "total": 2}
        assert res.manifest["counters"]["done"] == len(res.points)
        shard_points.extend(p.point_id for p in res.points)
    # the shards partition the spec exactly (some may be empty — the
    # assignment is a hash, not round-robin)
    assert sorted(shard_points) == sorted(p.point_id for p in spec.points)

    plain_dir = tmp_path / "plain"
    quiet_sweep(spec, plain_dir, jobs=1,
                cache_root=tmp_path / "cache")  # shared cache, same work

    merged_sharded = merge_runs(tmp_path / "runs", spec.run_id())
    merged_plain = merge_runs(plain_dir / "runs", spec.run_id())
    assert merged_sharded.sources == [
        spec.run_id() + ".s1of2", spec.run_id() + ".s2of2",
    ]
    assert merged_sharded.run.results_path.read_bytes() == \
        merged_plain.run.results_path.read_bytes()
    assert merged_sharded.run.manifest_path.read_bytes() == \
        merged_plain.run.manifest_path.read_bytes()
    assert merged_sharded.counters == {"ok": 4}


def test_corrupt_journal_warns_and_counts(tmp_path, capsys):
    """Satellite: a torn journal line surfaces as a stderr warning and a
    journal_corrupt counter, never silently."""
    spec = small_spec()
    first = quiet_sweep(spec, tmp_path, jobs=1)
    # tear the journal tail, as a mid-write kill would
    with open(first.run.results_path, "a") as fh:
        fh.write('{"point_id": "loopback(n=9)/none", "stat')
    second = run_sweep(spec, jobs=1, store_root=tmp_path / "runs",
                       cache_root=tmp_path / "cache")  # progress → stderr
    err = capsys.readouterr().err
    assert "torn/corrupt journal line" in err
    assert second.manifest["counters"]["journal_corrupt"] == 1
    assert second.ok


# ---- CLI -----------------------------------------------------------------

def test_cli_sweep_smoke(tmp_path, capsys):
    rc = main([
        "sweep", "--name", "cli-unit", "--apps", "loopback:2,loopback:3",
        "--levels", "none,optimized", "--jobs", "2",
        "--store", str(tmp_path / "runs"), "--cache", str(tmp_path / "c"),
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "SWEEP cli-unit (4 points" in out
    assert "loopback(n=2)/optimized" in out
    assert "manifest:" in out

    # second invocation: warm cache, every point a hit
    rc = main([
        "sweep", "--name", "cli-unit", "--apps", "loopback:2,loopback:3",
        "--levels", "none,optimized", "--jobs", "2", "--no-resume",
        "--store", str(tmp_path / "runs"), "--cache", str(tmp_path / "c"),
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert out.count(" hit") >= 4 and " miss" not in out
