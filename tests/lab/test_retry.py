"""RetryPolicy: classification, backoff determinism, circuit breaker."""

from repro.lab.executor import PointOutcome
from repro.lab.retry import (
    BREAKER_CODE,
    TRANSIENT_CODES,
    CircuitBreaker,
    RetryPolicy,
    is_transient,
)


def outcome(status="failed", codes=()):
    return PointOutcome(
        index=0, status=status, error="x",
        diagnostics=[{"code": c, "severity": "error", "message": "m"}
                     for c in codes],
    )


# ---- transient classification -------------------------------------------

def test_harness_codes_are_transient():
    for code in sorted(TRANSIENT_CODES):
        assert is_transient(outcome(codes=[code])), code


def test_synthesis_errors_are_permanent():
    assert not is_transient(outcome(codes=["RPR-L001"]))
    # mixed harness + toolchain codes: the toolchain error will recur
    assert not is_transient(outcome(codes=["RPR-E002", "RPR-T003"]))


def test_unclassified_failures_are_transient():
    assert is_transient(outcome(status="timeout"))
    assert is_transient(outcome(status="failed"))
    assert not is_transient(outcome(status="ok"))


# ---- policy decisions ----------------------------------------------------

def test_should_retry_respects_max_attempts():
    policy = RetryPolicy(max_attempts=3, breaker=None)
    oc = outcome(codes=["RPR-E001"])
    assert policy.should_retry(oc, 1)
    assert policy.should_retry(oc, 2)
    assert not policy.should_retry(oc, 3)


def test_should_not_retry_permanent_failures():
    policy = RetryPolicy(max_attempts=3, breaker=None)
    assert not policy.should_retry(outcome(codes=["RPR-L001"]), 1)


def test_backoff_is_exponential_capped_and_deterministic():
    policy = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.0,
                         breaker=None)
    assert policy.delay(2) == 0.1
    assert policy.delay(3) == 0.2
    assert policy.delay(4) == 0.4
    assert policy.delay(5) == 0.5   # capped
    jittered = RetryPolicy(base_delay=0.1, jitter=0.5, breaker=None)
    d1 = jittered.delay(2, "point-a")
    assert d1 == jittered.delay(2, "point-a")      # deterministic
    assert 0.1 <= d1 <= 0.1 * 1.5                  # bounded stretch
    assert jittered.delay(2, "point-a") != jittered.delay(2, "point-b")


# ---- circuit breaker -----------------------------------------------------

def test_breaker_opens_past_threshold_with_rpr_coded_diagnostic():
    breaker = CircuitBreaker(threshold=0.25, min_points=8)
    for _ in range(5):
        breaker.observe(True)
    for _ in range(3):
        breaker.observe(False)
    assert breaker.open
    diag = breaker.tripped_diagnostic
    assert diag is not None and diag["code"] == BREAKER_CODE
    assert "no-retry" in diag["message"]


def test_breaker_needs_a_meaningful_sample():
    breaker = CircuitBreaker(threshold=0.25, min_points=20)
    for _ in range(5):
        breaker.observe(False)   # 100% failing, but only 5 points
    assert not breaker.open


def test_open_breaker_stops_retries():
    policy = RetryPolicy(
        max_attempts=3,
        breaker=CircuitBreaker(threshold=0.25, min_points=4),
    )
    oc = outcome(codes=["RPR-E001"])
    assert policy.should_retry(oc, 1)
    for _ in range(4):
        policy.observe(False)
    assert policy.breaker_open
    assert not policy.should_retry(oc, 1)
