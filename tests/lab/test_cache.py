"""Cache-key invalidation and on-disk cache behavior (ISSUE satellite c).

The contract: changing the source text, *any* SynthesisOptions field, the
assertion level, or the device must produce a cache miss; byte-identical
inputs must hit — including across separate OS processes sharing one cache
directory.
"""

import dataclasses
import subprocess
import sys

import pytest

from repro.core.synth import SynthesisOptions
from repro.lab.cache import SynthesisCache, app_key_parts, cache_key
from repro.platform.device import EP2S60, EP2S180
from repro.runtime.taskgraph import Application

SRC = """
void p(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x < 100);
    co_stream_write(output, x + 1);
  }
  co_stream_close(output);
}
"""


def small_app(source: str = SRC) -> Application:
    app = Application("keytest")
    app.add_c_process(source, name="p", filename="k.c")
    app.feed("in", "p.input", data=[1, 2])
    app.sink("out", "p.output")
    return app


def test_identical_inputs_produce_identical_keys():
    assert cache_key(small_app(), "optimized") == \
        cache_key(small_app(), "optimized")


def test_source_text_change_invalidates():
    changed = SRC.replace("x < 100", "x < 101")
    assert cache_key(small_app(), "optimized") != \
        cache_key(small_app(changed), "optimized")


def test_assertion_level_invalidates():
    app = small_app()
    keys = {cache_key(app, lvl) for lvl in ("none", "unoptimized",
                                            "optimized")}
    assert len(keys) == 3


def test_device_invalidates():
    app = small_app()
    assert cache_key(app, "optimized", device=EP2S180) != \
        cache_key(app, "optimized", device=EP2S60)


@pytest.mark.parametrize(
    "field", [f.name for f in dataclasses.fields(SynthesisOptions)])
def test_every_options_field_invalidates(field):
    """Flipping any single SynthesisOptions field must change the key."""
    app = small_app()
    base = SynthesisOptions()
    value = getattr(base, field)
    if isinstance(value, bool):
        flipped = not value
    elif isinstance(value, str):
        flipped = value + "-x"
    else:
        flipped = value + 1
    changed = dataclasses.replace(base, **{field: flipped})
    assert cache_key(app, "optimized", base) != \
        cache_key(app, "optimized", changed)


def test_extra_parts_invalidate():
    app = small_app()
    assert cache_key(app, "optimized", extra=("campaign", 1)) != \
        cache_key(app, "optimized", extra=("campaign", 2))


def test_feeder_data_is_part_of_the_key():
    a = small_app()
    b = small_app()
    b.streams["in"].feeder_data = [9, 9]
    assert cache_key(a, "optimized") != cache_key(b, "optimized")


def test_app_key_parts_contain_no_memory_addresses():
    parts = app_key_parts(small_app())
    assert all("object at 0x" not in repr(p) for p in parts)


def test_key_is_stable_across_processes(tmp_path):
    """The fingerprint must not depend on PYTHONHASHSEED / process state."""
    prog = (
        "import sys; sys.path.insert(0, %r)\n"
        "from tests.lab.test_cache import small_app\n"
        "from repro.lab.cache import cache_key\n"
        "print(cache_key(small_app(), 'optimized'))\n"
    )
    keys = set()
    for seed in ("0", "1234"):
        out = subprocess.run(
            [sys.executable, "-c", prog % "src"],
            capture_output=True, text=True, check=True,
            cwd=str(_repo_root()),
            env=_env_with(PYTHONHASHSEED=seed),
        )
        keys.add(out.stdout.strip())
    assert len(keys) == 1
    assert keys == {cache_key(small_app(), "optimized")}


def _repo_root():
    import pathlib
    return pathlib.Path(__file__).resolve().parents[2]


def _env_with(**kw):
    import os
    env = dict(os.environ)
    env.update(kw)
    env["PYTHONPATH"] = str(_repo_root() / "src") + os.pathsep + \
        str(_repo_root())
    return env


def test_cache_roundtrip_and_stats(tmp_path):
    cache = SynthesisCache(tmp_path / "c")
    assert cache.get("deadbeef") is None
    cache.put("deadbeef", {"x": 1})
    assert cache.get("deadbeef") == {"x": 1}
    assert cache.stats.as_dict() == {
        "hits": 1, "misses": 1, "stores": 1, "evictions": 0, "errors": 0,
        "corrupt": 0, "proc_hits": 0, "proc_misses": 0, "lease_waits": 0,
        "lease_takeovers": 0, "partial_rebuilds": 0,
    }


def test_disabled_cache_never_hits():
    cache = SynthesisCache(None)
    cache.put("k", 1)
    assert cache.get("k") is None
    assert not cache.enabled
    assert cache.stats.misses == 1 and cache.stats.stores == 0


def test_corrupt_entry_heals_as_miss(tmp_path):
    cache = SynthesisCache(tmp_path / "c")
    cache.put("abcd", [1, 2, 3])
    path = cache._path("abcd")
    path.write_bytes(b"not a pickle")
    assert cache.get("abcd") is None
    assert cache.stats.errors == 1
    assert cache.stats.corrupt == 1
    assert not path.exists()  # the bad entry was dropped


def test_lru_eviction_bounds_entry_count(tmp_path):
    import os
    import time
    cache = SynthesisCache(tmp_path / "c", max_entries=100)
    for i in range(5):
        cache.put(f"k{i}", i)
        # force distinct mtimes without sleeping a full clock tick
        os.utime(cache._path(f"k{i}"), (time.time() + i, time.time() + i))
    cache.max_entries = 3
    cache._evict()
    assert len(cache) == 3
    assert cache.stats.evictions >= 2
    # the newest entry survives
    assert cache.get("k4") == 4


def test_cache_shared_across_processes(tmp_path):
    """A second OS process sees entries stored by the first (satellite c)."""
    root = tmp_path / "shared"
    writer = (
        "from repro.lab.cache import SynthesisCache\n"
        f"SynthesisCache({str(root)!r}).put('feedface', [7, 3, 9])\n"
    )
    reader = (
        "from repro.lab.cache import SynthesisCache\n"
        f"c = SynthesisCache({str(root)!r})\n"
        "print(c.get('feedface'))\n"
        "print(c.stats.hits)\n"
    )
    for prog in (writer, reader):
        out = subprocess.run(
            [sys.executable, "-c", prog], capture_output=True, text=True,
            check=True, env=_env_with(),
        )
    assert out.stdout.splitlines() == ["[7, 3, 9]", "1"]


def test_one_handle_is_safe_under_concurrent_threads(tmp_path):
    """Serve-daemon regression: many threads hammer one shared handle —
    get/put/evict racing freely — with no exceptions and coherent stats.
    Before the cache grew its lock, concurrent _evict() calls crashed on
    files another thread had already unlinked."""
    import threading

    cache = SynthesisCache(tmp_path / "c", max_entries=8)
    errors = []
    n_threads, n_rounds = 8, 30
    barrier = threading.Barrier(n_threads)

    def hammer(tid):
        try:
            barrier.wait()
            for i in range(n_rounds):
                cache.put(f"shared{i % 4}", [tid, i])
                cache.put(f"t{tid}-{i}", i)  # churn forces evictions
                got = cache.get(f"shared{i % 4}")
                assert got is None or isinstance(got, list)
        except Exception as exc:  # noqa: BLE001 - recorded for the assert
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(t,))
               for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors
    assert len(cache) <= cache.max_entries
    stats = cache.stats.as_dict()
    assert stats["stores"] == n_threads * n_rounds * 2
    assert stats["hits"] + stats["misses"] == n_threads * n_rounds
    assert stats["errors"] == 0 and stats["corrupt"] == 0


def test_stats_counters_coherent_under_concurrent_updates(tmp_path):
    """hits+misses must equal total gets even when updated from many
    threads (CacheStats increments happen under the handle's lock)."""
    import threading

    cache = SynthesisCache(tmp_path / "c")
    cache.put("hot", 42)
    n_threads, n_gets = 8, 50
    barrier = threading.Barrier(n_threads)

    def reader():
        barrier.wait()
        for i in range(n_gets):
            assert cache.get("hot") == 42
            cache.get(f"cold-{i}")

    threads = [threading.Thread(target=reader) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert cache.stats.hits == n_threads * n_gets
    assert cache.stats.misses == n_threads * n_gets
