"""Campaign engine: determinism, classification taxonomy, paper fidelity."""

import pytest

from repro.errors import CampaignError
from repro.faults import ReadForWrite
from repro.faults.campaign import (
    ASSERTION_DETECTED,
    BENIGN,
    CLASSIFICATIONS,
    SILENT_CORRUPTION,
    WATCHDOG_DETECTED,
    Scenario,
    builtin_targets,
    generate_scenarios,
    run_campaign,
)


def loopback_campaign(**kw):
    kw.setdefault("seed", 7)
    kw.setdefault("count", 8)
    return run_campaign("loopback", **kw)


def test_builtin_targets_cover_the_papers_apps():
    assert set(builtin_targets()) == {"loopback", "edge", "tripledes"}


def test_unknown_target_raises_campaign_error():
    with pytest.raises(CampaignError, match="unknown campaign target"):
        run_campaign("fft", count=1)


def test_scenario_generation_is_deterministic():
    app = builtin_targets()["loopback"].build()
    a = generate_scenarios(app, seed=3, count=10)
    b = generate_scenarios(app, seed=3, count=10)
    assert [(s.name, s.description) for s in a] == \
           [(s.name, s.description) for s in b]
    c = generate_scenarios(app, seed=4, count=10)
    assert [s.description for s in a] != [s.description for s in c]


def test_same_seed_reproduces_identical_matrix():
    a = loopback_campaign(count=4)
    b = loopback_campaign(count=4)
    assert a.matrix() == b.matrix()
    assert a.outcomes == b.outcomes


def test_every_run_is_classified():
    res = loopback_campaign()
    assert len(res.outcomes) == len(res.scenarios) * len(res.levels)
    for oc in res.outcomes:
        assert oc.classification in CLASSIFICATIONS


def test_read_for_write_matches_paper_signature():
    """The paper's DES bug class: invisible without assertions, caught
    by the synthesized checkers once assertions are enabled."""
    scenarios = [Scenario(
        "rfw", "store to stage0.buf emitted as read",
        ir_faults={"stage0": (ReadForWrite(array="buf"),)},
    )]
    res = run_campaign(
        "loopback", levels=("none", "unoptimized", "optimized"),
        scenarios=scenarios,
    )
    assert res.outcome("rfw", "none").classification == SILENT_CORRUPTION
    assert res.outcome("rfw", "unoptimized").classification == ASSERTION_DETECTED
    assert res.outcome("rfw", "optimized").classification == ASSERTION_DETECTED
    assert res.outcome("rfw", "optimized").detection_latency is not None


def test_detection_rate_and_summary_agree():
    res = loopback_campaign()
    for lv in res.levels:
        counts = res.summary(lv)
        assert sum(counts.values()) == len(res.scenarios)
        harmful = sum(counts.values()) - counts[BENIGN]
        detected = counts[ASSERTION_DETECTED] + counts[WATCHDOG_DETECTED]
        if harmful:
            assert res.detection_rate(lv) == pytest.approx(detected / harmful)


def test_render_includes_matrix_and_legend():
    res = loopback_campaign(count=4)
    text = res.render()
    assert "FAULT CAMPAIGN loopback" in text
    for sc in res.scenarios:
        assert sc.name in text
    assert "detection rate" in text


def test_campaign_cli_smoke(capsys):
    from repro.cli import main

    rc = main([
        "campaign", "--app", "loopback", "--seed", "1", "--count", "3",
        "--levels", "optimized",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "FAULT CAMPAIGN loopback" in out
    assert "detection rate" in out


def test_parallel_campaign_reproduces_serial_matrix_exactly(tmp_path):
    """Satellite requirement: --jobs N with the same seed must reproduce
    the detection matrix exactly — outcome for outcome, not just summary
    counts — with or without the synthesis cache."""
    serial = loopback_campaign(count=4)
    pooled = loopback_campaign(count=4, jobs=2,
                               cache_root=str(tmp_path / "cache"))
    assert pooled.matrix() == serial.matrix()
    assert pooled.outcomes == serial.outcomes
    assert pooled.render() == serial.render()
    # warm cache, still identical
    warm = loopback_campaign(count=4, jobs=2,
                             cache_root=str(tmp_path / "cache"))
    assert warm.outcomes == serial.outcomes


def test_campaign_cli_jobs_and_cache_flags(tmp_path, capsys):
    from repro.cli import main

    args = ["campaign", "--app", "loopback", "--seed", "1", "--count", "2",
            "--levels", "optimized", "--cache", str(tmp_path / "c")]
    assert main(args + ["--jobs", "1"]) == 0
    serial_out = capsys.readouterr().out
    assert main(args + ["--jobs", "2"]) == 0
    pooled_out = capsys.readouterr().out
    assert pooled_out == serial_out
