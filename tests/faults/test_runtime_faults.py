"""Runtime fault layer: channel/register faults and the injector."""

import pytest

from repro.core.synth import synthesize
from repro.errors import FaultError
from repro.faults import (
    ChannelBitFlip,
    DropWord,
    DuplicateWord,
    NarrowCompare,
    RegisterUpset,
    RuntimeFaultInjector,
    StreamStall,
    StuckAtBit,
    apply_faults,
)
from repro.hls.cyclemodel import Channel
from repro.runtime.hwexec import execute
from repro.runtime.swsim import software_sim
from repro.runtime.taskgraph import Application

SRC = """
void p(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    co_stream_write(output, x + 1);
  }
  co_stream_close(output);
}
"""


def make_app(data):
    app = Application("rt")
    app.add_c_process(SRC, name="p")
    app.feed("in", "p.input", data=data)
    app.sink("out", "p.output")
    return app


def run_with(faults, data=(1, 2, 3, 4), **kw):
    app = make_app(list(data))
    image = synthesize(app, assertions="none")
    return execute(image, faults=faults, **kw)


# ---- channel fault mechanics (unit level) ----------------------------------


def attach(ch, fault):
    inj = RuntimeFaultInjector([fault])
    inj.attach({ch.name: ch})
    return inj


def test_bitflip_hits_exactly_one_word():
    ch = Channel("c", width=8, depth=8)
    attach(ch, ChannelBitFlip(target="c", word_index=1, bit=0))
    for v in (4, 4, 4):
        ch.push(v)
    assert list(ch.queue) == [4, 5, 4]


def test_bitflip_wraps_bit_to_channel_width():
    ch = Channel("c", width=8, depth=8)
    attach(ch, ChannelBitFlip(target="c", word_index=0, bit=8))
    ch.push(0)
    assert list(ch.queue) == [1]  # bit 8 % width 8 == bit 0


def test_stuck_at_one_forces_every_word_from_word():
    ch = Channel("c", width=8, depth=8)
    attach(ch, StuckAtBit(target="c", bit=1, stuck_value=1, from_word=1))
    for v in (0, 0, 4):
        ch.push(v)
    assert list(ch.queue) == [0, 2, 6]


def test_stuck_at_zero_clears_bit():
    ch = Channel("c", width=8, depth=8)
    attach(ch, StuckAtBit(target="c", bit=0, stuck_value=0))
    for v in (1, 2, 3):
        ch.push(v)
    assert list(ch.queue) == [0, 2, 2]


def test_drop_and_duplicate_word():
    ch = Channel("c", width=8, depth=8)
    attach(ch, DropWord(target="c", word_index=1))
    for v in (1, 2, 3):
        ch.push(v)
    assert list(ch.queue) == [1, 3]

    ch2 = Channel("d", width=8, depth=8)
    attach(ch2, DuplicateWord(target="d", word_index=0))
    ch2.push(7)
    ch2.push(8)
    assert list(ch2.queue) == [7, 7, 8]


def test_stream_stall_blocks_push_during_window_only():
    ch = Channel("c", width=8, depth=8)
    inj = attach(ch, StreamStall(target="c", start_cycle=2, duration=3))
    assert ch.can_push()          # cycle 0: before the window
    inj.tick(); inj.tick()        # now == 2
    assert not ch.can_push()
    inj.tick(); inj.tick()        # now == 4 (last stalled cycle)
    assert not ch.can_push()
    inj.tick()                    # now == 5: window over
    assert ch.can_push()


def test_channel_faults_ignore_non_scalar_words():
    ch = Channel("c", width=8, depth=8)
    attach(ch, ChannelBitFlip(target="c", word_index=0, bit=0))
    ch.push(("tap", 1, 2))
    assert list(ch.queue) == [("tap", 1, 2)]


def test_fault_reset_rearms_word_counter():
    fault = ChannelBitFlip(target="c", word_index=0, bit=0)
    ch = Channel("c", width=8, depth=8)
    attach(ch, fault)
    ch.push(2)
    assert list(ch.queue) == [3]
    ch2 = Channel("c", width=8, depth=8)
    attach(ch2, fault)  # re-attach resets `seen` and events
    ch2.push(2)
    assert list(ch2.queue) == [3]
    assert len(fault.events) == 1


def test_injector_detach_removes_only_its_own_faults():
    ch = Channel("c", width=8, depth=8)
    mine = ChannelBitFlip(target="c", word_index=0, bit=0)
    other = ChannelBitFlip(target="c", word_index=0, bit=0)  # equal params
    ch.faults.append(other)
    inj = RuntimeFaultInjector([mine])
    inj.attach({"c": ch})
    assert ch.faults == [other, mine]
    inj.detach()
    # identity-based removal: the equal-but-distinct fault must survive
    assert ch.faults == [other]


# ---- misconfiguration ------------------------------------------------------


def test_unknown_channel_raises_fault_error():
    with pytest.raises(FaultError, match="unknown channel"):
        run_with([ChannelBitFlip(target="nope", word_index=0, bit=0)])


def test_unknown_process_raises_fault_error():
    with pytest.raises(FaultError, match="unknown process"):
        run_with([RegisterUpset(target="ghost", cycle=1)])


def test_ir_fault_matching_nothing_raises_fault_error():
    app = make_app([1])  # SRC has no comparison wider than 60 bits
    func = app.processes["p"].func
    with pytest.raises(FaultError, match="matched nothing"):
        apply_faults(func, (NarrowCompare(width=60),))


# ---- end-to-end through hardware execution ---------------------------------


def test_bitflip_corrupts_hw_output_silently():
    golden = software_sim(make_app([1, 2, 3, 4])).outputs["out"]
    res = run_with([ChannelBitFlip(target="out", word_index=2, bit=3)])
    assert res.completed and res.reason == "completed"
    assert res.outputs["out"] != golden
    assert res.outputs["out"][2] == golden[2] ^ 8
    assert any("bit 3" in e for e in res.fault_events)


def test_drop_on_feeder_loses_one_word():
    res = run_with([DropWord(target="in", word_index=0)])
    assert res.completed
    assert res.outputs["out"] == [3, 4, 5]


def test_duplicate_on_feeder_repeats_one_word():
    res = run_with([DuplicateWord(target="in", word_index=3)])
    assert res.completed
    assert res.outputs["out"] == [2, 3, 4, 5, 5]


def test_stall_is_benign_for_a_correct_design():
    golden = software_sim(make_app([1, 2, 3, 4])).outputs["out"]
    clean = run_with([])
    res = run_with([StreamStall(target="out", start_cycle=2, duration=40)])
    assert res.completed
    assert res.outputs["out"] == golden
    assert res.cycles > clean.cycles  # the storm cost cycles, nothing else


def test_register_upset_fires_once_and_logs():
    res = run_with([RegisterUpset(target="p", cycle=3, reg_index=1, bit=0)])
    assert res.completed
    assert len([e for e in res.fault_events if "flipped" in e]) <= 1


def test_same_faults_reproduce_identical_results():
    faults = [
        ChannelBitFlip(target="out", word_index=1, bit=2),
        StreamStall(target="in", start_cycle=4, duration=8),
    ]
    a = run_with(faults)
    b = run_with(faults)
    assert a.outputs == b.outputs
    assert a.cycles == b.cycles
    assert a.fault_events == b.fault_events


def test_rtl_sim_honors_channel_faults():
    # the same fault corrupts the same word whether the design runs under
    # the schedule-level cycle model or the RTL simulator
    from repro.hls.cyclemodel import ProcessExec
    from repro.rtl.sim import RtlSim
    from tests.helpers import compile_one

    cp = compile_one(SRC.replace("void p(", "void f("))
    data = [10, 20, 30]

    def fresh():
        cin = Channel("i", depth=64)
        cout = Channel("o", depth=64)
        for v in data:
            cin.push(v)
        cin.close()
        return cin, cout

    def faulted():
        return RuntimeFaultInjector(
            [ChannelBitFlip(target="output", word_index=1, bit=4)]
        )

    cin, cout = fresh()
    inj = faulted()
    inj.attach({"input": cin, "output": cout})
    pe = ProcessExec(cp.schedule, {"input": cin, "output": cout})
    while not pe.done and pe.cycles < 10_000:
        inj.tick()
        pe.tick()
    model_out = list(cout.queue)
    inj.detach()

    cin, cout = fresh()
    sim = RtlSim(cp.rtl, {"input": cin, "output": cout}, injector=faulted())
    sim.run()
    rtl_out = list(cout.queue)

    assert model_out == rtl_out == [11, 21 ^ 16, 31]
