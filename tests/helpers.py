"""Shared test utilities: compile snippets, run both execution models."""

from __future__ import annotations

from repro.frontend.lowering import lower_source
from repro.hls.compiler import CompiledProcess, compile_process
from repro.hls.constraints import HLSConfig, ScheduleConfig
from repro.hls.cyclemodel import Channel, ProcessExec
from repro.ir.function import IRFunction
from repro.ir.interp import run_to_completion


def lower_one(source: str, name: str | None = None,
              filename: str = "test.c", defines=None) -> IRFunction:
    module = lower_source(source, filename=filename, defines=defines)
    if name is None:
        assert len(module.functions) == 1, sorted(module.functions)
        name = next(iter(module.functions))
    return module[name]


def compile_one(source: str, name: str | None = None,
                config: HLSConfig | None = None,
                filename: str = "test.c") -> CompiledProcess:
    return compile_process(lower_one(source, name, filename), config)


def interp_outputs(func: IRFunction, inputs=None, **kw):
    result, outs = run_to_completion(func, inputs or {}, **kw)
    return result, outs


def run_cycle_model(
    cp: CompiledProcess,
    inputs: dict[str, list[int]] | None = None,
    max_cycles: int = 200_000,
    ext_funcs=None,
):
    """Run one compiled process standalone; returns (exec, outputs dict)."""
    func = cp.hw_func
    channels: dict[str, Channel] = {}
    from repro.ir.ops import OpKind

    reads, writes = set(), set()
    for instr in func.instructions():
        if instr.op == OpKind.STREAM_READ:
            reads.add(instr.attrs["stream"])
        elif instr.op in (OpKind.STREAM_WRITE, OpKind.STREAM_CLOSE):
            writes.add(instr.attrs["stream"])
    for s in func.stream_names():
        depth = 1_000_000 if s in writes and s not in reads else 4096
        channels[s] = Channel(s, depth=depth)
    taps = {}
    for instr in func.instructions():
        if instr.op in (OpKind.TAP, OpKind.TAP_READ):
            ch = instr.attrs["channel"]
            taps.setdefault(ch, Channel(ch, unbounded=True))
    for s, data in (inputs or {}).items():
        for v in data:
            channels[s].push(v)
        channels[s].close()
    pe = ProcessExec(cp.schedule, channels, taps=taps, ext_funcs=ext_funcs)
    while not pe.done and pe.cycles < max_cycles:
        pe.tick()
    outs = {
        s: list(channels[s].queue)
        for s in func.stream_names()
        if s in writes and s not in reads
    }
    for name, ch in taps.items():
        outs[f"tap:{name}"] = list(ch.queue)
    return pe, outs


def default_config(**kw) -> HLSConfig:
    return HLSConfig(schedule=ScheduleConfig(**kw))
