"""Unit tests for the table-format overhead reports."""

from repro.core.synth import synthesize
from repro.platform.report import fit_report, overhead_report
from repro.runtime.taskgraph import Application

SRC = """
void p(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x != 42);
    co_stream_write(output, x);
  }
  co_stream_close(output);
}
"""


def images():
    app = Application("t")
    app.add_c_process(SRC, name="p", filename="p.c")
    app.feed("in", "p.input", data=[1])
    app.sink("out", "p.output")
    return (synthesize(app, assertions="none"),
            synthesize(app, assertions="optimized"))


def test_report_has_paper_rows():
    orig, opt = images()
    report = overhead_report(orig, opt)
    rows = report.rows()
    labels = [r[0] for r in rows]
    assert any("Logic used" in lbl for lbl in labels)
    assert any("Comb. ALUT" in lbl for lbl in labels)
    assert any("Registers" in lbl for lbl in labels)
    assert any("Block RAM" in lbl for lbl in labels)
    assert any("interconnect" in lbl for lbl in labels)
    assert labels[-1] == "Frequency (MHz)"


def test_report_renders_with_title():
    orig, opt = images()
    text = report_text = overhead_report(orig, opt).render("TABLE X")
    assert "TABLE X" in text
    assert "Original" in text and "Assert" in text and "Overhead" in text
    _ = report_text


def test_percentages_are_of_device_capacity():
    orig, opt = images()
    report = overhead_report(orig, opt)
    alut_row = next(r for r in report.rows() if "Comb. ALUT" in r[0])
    # overhead cell looks like "+96 (+0.07%)"
    assert alut_row[3].startswith("+")
    assert "%" in alut_row[3]


def test_summary_properties():
    orig, opt = images()
    report = overhead_report(orig, opt)
    assert report.max_resource_overhead_pct < 0.2
    assert abs(report.fmax_overhead_pct) < 5.0


def test_fit_report_clean_for_small_design():
    orig, _ = images()
    assert fit_report(orig) == []
