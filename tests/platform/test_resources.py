"""Unit tests for the resource estimator."""

from repro.core.synth import synthesize
from repro.platform.device import EP2S60, EP2S180
from repro.platform.resources import ResourceReport, estimate_image
from repro.runtime.taskgraph import Application

SRC = """
void p(co_stream input, co_stream output) {
  uint32 x;
  uint16 buf[64];
  while (co_stream_read(input, &x)) {
    buf[x & 63] = x;
    assert(x < 10000);
    co_stream_write(output, x * 3 + buf[x & 63]);
  }
  co_stream_close(output);
}
"""


def make_image(level="none", **kw):
    app = Application("t")
    app.add_c_process(SRC, name="p", filename="p.c")
    app.feed("in", "p.input", data=[1])
    app.sink("out", "p.output")
    return synthesize(app, assertions=level, **kw)


def test_report_totals_positive_and_consistent():
    res = estimate_image(make_image())
    t = res.total
    assert t.comb_aluts > 0 and t.registers > 0
    assert t.bram_bits >= 64 * 16  # the buf array
    assert t.interconnect > 0
    assert t.logic >= max(t.comb_aluts, t.registers)


def test_multiplier_maps_to_dsp():
    res = estimate_image(make_image())
    assert res.total.dsp_mults >= 1


def test_channel_fifo_bits_match_paper_constant():
    # a 32-bit CPU stream costs 16 x (32+4) = 576 block-RAM bits (the
    # paper's observed +576-bit Block RAM overhead per channel)
    res = estimate_image(make_image())
    assert res.channel_bits >= 2 * 576


def test_assertions_increase_resources():
    base = estimate_image(make_image("none")).total
    unopt = estimate_image(make_image("unoptimized")).total
    opt = estimate_image(make_image("optimized")).total
    assert unopt.comb_aluts > base.comb_aluts
    assert opt.comb_aluts > base.comb_aluts
    assert unopt.bram_bits > base.bram_bits  # the extra failure channel


def test_overheads_are_small_fraction_of_device():
    # abstract claim: < 0.13% of the EP2S180 for the case-study style app
    base = estimate_image(make_image("none")).total
    opt = estimate_image(make_image("optimized")).total
    delta_pct = 100.0 * (opt.comb_aluts - base.comb_aluts) / EP2S180.aluts
    assert delta_pct < 0.13


def test_sharing_reduces_alut_overhead_with_many_assertions():
    from repro.apps.loopback import build_loopback

    app = build_loopback(16)
    base = estimate_image(synthesize(app, assertions="none")).total
    unopt = estimate_image(synthesize(app, assertions="unoptimized")).total
    opt = estimate_image(synthesize(app, assertions="optimized")).total
    assert (unopt.comb_aluts - base.comb_aluts) > 2 * (
        opt.comb_aluts - base.comb_aluts
    )


def test_check_fits_flags_overflow():
    r = ResourceReport(comb_aluts=10**9)
    assert r.check_fits(EP2S60)
    assert not ResourceReport(comb_aluts=10).check_fits(EP2S180)


def test_per_process_breakdown_sums_to_design_minus_channels():
    res = estimate_image(make_image("optimized"))
    proc_aluts = sum(p.report.comb_aluts for p in res.processes)
    assert proc_aluts <= res.total.comb_aluts  # channels/collectors add more


def test_logic_used_packing_rule():
    r = ResourceReport(comb_aluts=1000, registers=400)
    assert r.logic == 1000 + int(0.46 * 400)
