"""Unit tests for the Fmax model."""

from repro.core.synth import synthesize
from repro.platform.timing import TimingParams, estimate_fmax
from repro.runtime.taskgraph import Application


def image_for(src, name="p", data=(1,)):
    app = Application("t")
    app.add_c_process(src, name=name, filename="t.c")
    app.feed("in", f"{name}.input", data=list(data))
    app.sink("out", f"{name}.output")
    return synthesize(app, assertions="none")


SIMPLE = """
void p(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) { co_stream_write(output, x); }
  co_stream_close(output);
}
"""

DEEP = """
void p(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    co_stream_write(output, ((((x + 1) ^ 3) + 5) & 255) + 9);
  }
  co_stream_close(output);
}
"""

MEMORY = """
void p(co_stream input, co_stream output) {
  uint32 x;
  uint16 buf[32];
  while (co_stream_read(input, &x)) {
    buf[x & 31] = x;
    co_stream_write(output, buf[x & 31] + 1);
  }
  co_stream_close(output);
}
"""


def test_fmax_positive_and_path_consistent():
    t = estimate_fmax(image_for(SIMPLE))
    assert 0 < t.fmax_mhz < 1000
    assert abs(t.fmax_mhz - 1000.0 / t.critical_path_ns) < 1e-6


def test_deeper_logic_is_slower():
    # below the Fmax floor both designs saturate, so compare unfloored
    params = TimingParams(t_floor=0.0)
    shallow = estimate_fmax(image_for(SIMPLE), params=params)
    deep = estimate_fmax(image_for(DEEP), params=params)
    assert deep.fmax_mhz < shallow.fmax_mhz
    assert deep.contributions["depth"] > shallow.contributions["depth"]


def test_bram_on_path_costs_access_time():
    plain = estimate_fmax(image_for(DEEP))
    mem = estimate_fmax(image_for(MEMORY))
    assert mem.contributions["embedded_ns"] > 0
    assert plain.contributions["embedded_ns"] == 0
    _ = mem


def test_more_cpu_channels_lower_fmax():
    from repro.apps.loopback import build_loopback

    orig = estimate_fmax(synthesize(build_loopback(32), assertions="none"))
    unopt = estimate_fmax(synthesize(build_loopback(32), assertions="unoptimized"))
    assert unopt.fmax_mhz < orig.fmax_mhz
    assert unopt.contributions["cpu_streams"] > orig.contributions["cpu_streams"]


def test_shared_channels_recover_fmax():
    from repro.apps.loopback import build_loopback

    app = build_loopback(64)
    orig = estimate_fmax(synthesize(app, assertions="none"))
    unopt = estimate_fmax(synthesize(app, assertions="unoptimized"))
    opt = estimate_fmax(synthesize(app, assertions="optimized"))
    assert unopt.fmax_mhz < opt.fmax_mhz <= orig.fmax_mhz * 1.02


def test_jitter_is_deterministic():
    img = image_for(SIMPLE)
    a = estimate_fmax(img)
    b = estimate_fmax(img)
    assert a.fmax_mhz == b.fmax_mhz


def test_jitter_bounded():
    t = estimate_fmax(image_for(SIMPLE))
    assert abs(t.contributions["jitter_frac"]) <= 1.0


def test_params_are_tunable():
    img = image_for(SIMPLE)
    fast = estimate_fmax(img, params=TimingParams(t_lut_level=0.1, t_floor=1.0))
    slow = estimate_fmax(img, params=TimingParams(t_lut_level=4.0, t_floor=1.0))
    assert fast.fmax_mhz > slow.fmax_mhz


def test_floor_caps_trivial_designs():
    img = image_for(SIMPLE)
    t = estimate_fmax(img)
    assert t.critical_path_ns >= TimingParams().t_floor * 0.985


def test_process_fanout_knee():
    from repro.apps.loopback import build_loopback

    small = estimate_fmax(synthesize(build_loopback(8), assertions="none"))
    big = estimate_fmax(synthesize(build_loopback(64), assertions="none"))
    assert big.fmax_mhz < small.fmax_mhz
