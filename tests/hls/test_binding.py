"""Unit tests for functional-unit binding and sharing."""

from repro.hls.binding import bind_function
from repro.hls.constraints import ScheduleConfig
from repro.hls.schedule import schedule_function
from tests.helpers import lower_one


def bind(src, **cfg):
    func = lower_one(src)
    fs = schedule_function(func, ScheduleConfig(**cfg))
    return bind_function(fs)


def test_ops_in_different_states_share_one_unit():
    report = bind("""
void f(co_stream input, co_stream output) {
  uint32 x; uint32 y;
  co_stream_read(input, &x);
  y = x * 3;
  co_stream_write(output, y);
  co_stream_read(input, &x);
  y = x * 5;
  co_stream_write(output, y);
}
""")
    assert report.fu_count("mult") == 1
    assert report.shared_away() >= 1


def test_same_state_ops_need_separate_units():
    report = bind("""
void f(co_stream o) {
  uint32 a; uint32 b;
  a = 1 + 2;
  b = 3 + 4;
  co_stream_write(o, a ^ b);
}
""", max_chain_levels=8)
    # both adds chain into the same state -> two addsub units
    assert report.fu_count("addsub") == 2


def test_shared_unit_width_is_max_of_ops():
    report = bind("""
void f(co_stream input, co_stream output) {
  uint64 a; uint8 b;
  co_stream_read(input, &a);
  a = a * 3;
  co_stream_write(output, a);
  b = 2;
  b = b * 5;
  co_stream_write(output, b);
}
""")
    mults = [fu for fu in report.fus if fu.resource == "mult"]
    assert len(mults) == 1
    assert mults[0].width == 64


def test_mux_bits_counted_for_shared_units():
    report = bind("""
void f(co_stream input, co_stream output) {
  uint32 x; uint32 y;
  co_stream_read(input, &x);
  y = x * 3;
  co_stream_write(output, y);
  co_stream_read(input, &x);
  y = x * 5;
  co_stream_write(output, y);
}
""")
    assert report.mux_bits() > 0


def test_unshared_unit_has_no_mux_cost():
    report = bind("""
void f(co_stream o) {
  co_stream_write(o, 3 * 4);
}
""")
    assert report.mux_bits() == 0


def test_assertions_in_one_process_share_comparators():
    # Section 3.3: multiple assertion conditions in distinct states fold
    # onto shared compare units
    src = """
void f(co_stream input, co_stream output) {
  uint32 x; uint32 y; uint32 z;
  co_stream_read(input, &x);
  y = x > 5;
  co_stream_write(output, y);
  co_stream_read(input, &x);
  z = x > 9;
  co_stream_write(output, z);
}
"""
    report = bind(src)
    assert report.fu_count("compare") == 1


def test_pipeline_slots_conflict_sequential_do_not():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    co_stream_write(output, (x + 1) ^ (x + 2));
  }
}
"""
    report = bind(src)
    # two adds in the same pipeline stage (same slot) cannot share
    assert report.fu_count("addsub") >= 2
