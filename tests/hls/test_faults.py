"""Unit tests for translation-fault injection (paper Section 5.1)."""

import pytest

from repro.hls.faults import FaultError, NarrowCompare, ReadForWrite, apply_faults
from repro.ir.ops import COMPARISONS, OpKind
from tests.helpers import interp_outputs, lower_one, run_cycle_model
from repro.hls.compiler import compile_process
from repro.hls.constraints import HLSConfig


NARROW_SRC = """
void f(co_stream output) {
  uint64 c1;
  uint64 c2;
  c1 = 4294967296;
  c2 = 4294967286;
  co_stream_write(output, c2 > c1);
}
"""


def test_narrow_compare_tags_instruction():
    func = lower_one(NARROW_SRC)
    hw = apply_faults(func, [NarrowCompare(width=5)])
    tagged = [
        i for i in hw.instructions()
        if i.op in COMPARISONS and i.attrs.get("force_compare_width") == 5
    ]
    assert tagged


def test_narrow_compare_leaves_source_ir_untouched():
    func = lower_one(NARROW_SRC)
    apply_faults(func, [NarrowCompare(width=5)])
    assert not any(
        i.attrs.get("force_compare_width") for i in func.instructions()
    )


def test_paper_bug_sw_false_hw_true():
    func = lower_one(NARROW_SRC)
    _, sw = interp_outputs(func)
    assert sw["output"] == [0]  # correct 64-bit comparison

    cp = compile_process(func, HLSConfig(faults=(NarrowCompare(width=5),)))
    _, hw = run_cycle_model(cp)
    assert hw["output"] == [1]  # the faulty 5-bit comparison: 22 > 0


def test_narrow_compare_line_filter():
    func = lower_one(NARROW_SRC, filename="test.c")
    with pytest.raises(FaultError):
        apply_faults(func, [NarrowCompare(width=5, line=999)])


def test_narrow_compare_skips_already_narrow():
    src = "void f(co_stream o) { uint4 a; uint4 b; a = 1; b = 2; co_stream_write(o, a > b); }"
    func = lower_one(src)
    with pytest.raises(FaultError):
        apply_faults(func, [NarrowCompare(width=5)])


READ_FOR_WRITE_SRC = """
void f(co_stream output) {
  uint32 flags[2];
  flags[0] = 0;
  flags[1] = 1;
  co_stream_write(output, flags[1]);
}
"""


def test_read_for_write_replaces_store():
    func = lower_one(READ_FOR_WRITE_SRC)
    hw = apply_faults(func, [ReadForWrite(array="flags", line=5)])
    assert hw.count_ops(OpKind.STORE) == func.count_ops(OpKind.STORE) - 1


def test_read_for_write_changes_behaviour():
    func = lower_one(READ_FOR_WRITE_SRC)
    _, sw = interp_outputs(func)
    assert sw["output"] == [1]
    cp = compile_process(
        func, HLSConfig(faults=(ReadForWrite(array="flags", line=5),))
    )
    _, hw = run_cycle_model(cp)
    assert hw["output"] == [0]  # the write was lost in hardware


def test_fault_matching_nothing_is_an_error():
    func = lower_one(READ_FOR_WRITE_SRC)
    with pytest.raises(FaultError):
        apply_faults(func, [ReadForWrite(array="nonexistent")])
