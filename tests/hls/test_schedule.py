"""Unit tests for the list scheduler (non-pipelined control steps)."""

import pytest

from repro.errors import SchedulingError
from repro.hls.constraints import ScheduleConfig
from repro.hls.schedule import schedule_function
from tests.helpers import lower_one


def sched(src, **cfg):
    func = lower_one(src, defines={"NDEBUG": ""} if cfg.pop("ndebug", False) else None)
    return schedule_function(func, ScheduleConfig(**cfg)), func


def test_every_reachable_block_gets_at_least_one_state():
    fs, func = sched("""
void f(co_stream o) {
  uint32 a;
  a = 1;
  if (a > 0) { a = 2; }
  co_stream_write(o, a);
}
""")
    for bs in fs.blocks.values():
        assert bs.length >= 1


def test_comb_ops_chain_into_one_state():
    fs, func = sched("""
void f(co_stream o) {
  uint32 a;
  a = ((1 + 2) ^ 3) + 4;
  co_stream_write(o, a);
}
""")
    entry = fs.blocks[func.entry]
    assert entry.length == 1


def test_chain_depth_limit_splits_states():
    src = """
void f(co_stream o) {
  uint32 a;
  a = 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9 + 10 + 11;
  co_stream_write(o, a);
}
"""
    fs_deep, func = sched(src, max_chain_levels=2)
    fs_wide, _ = sched(src, max_chain_levels=8)
    assert fs_deep.blocks[func.entry].length > fs_wide.blocks[func.entry].length


def test_memory_port_conflict_serializes():
    src = """
void f(co_stream o) {
  uint8 a[4] = {1, 2};
  co_stream_write(o, a[0] + a[1]);
}
"""
    fs1, func = sched(src, array_ports=1)
    fs2, _ = sched(src, array_ports=2)
    assert fs1.blocks[func.entry].length == fs2.blocks[func.entry].length + 1


def test_different_arrays_no_conflict():
    src = """
void f(co_stream o) {
  uint8 a[4] = {1};
  uint8 b[4] = {2};
  co_stream_write(o, a[0] + b[0]);
}
"""
    fs, func = sched(src)
    assert fs.blocks[func.entry].length == 1


def test_stream_ops_on_same_stream_serialize():
    src = """
void f(co_stream o) {
  co_stream_write(o, 1);
  co_stream_write(o, 2);
}
"""
    fs, func = sched(src)
    assert fs.blocks[func.entry].length == 2


def test_multiplier_is_registered():
    src = """
void f(co_stream o) {
  uint32 a;
  uint32 b;
  a = 7;
  b = a * a;
  co_stream_write(o, b);
}
"""
    fs, func = sched(src)
    entry = fs.blocks[func.entry]
    # mul result needs a cycle; the dependent write lands a step later
    assert entry.length >= 2


def test_assert_check_rejected_by_scheduler():
    func = lower_one("void f(co_stream o) { uint32 a; a = 1; assert(a > 0); }")
    with pytest.raises(SchedulingError):
        schedule_function(func)


def test_state_count_totals_blocks():
    fs, func = sched("""
void f(co_stream o) {
  uint32 i;
  for (i = 0; i < 4; i++) { co_stream_write(o, i); }
}
""")
    assert fs.state_count() == sum(bs.length for bs in fs.blocks.values())


def test_load_chains_with_compare():
    # flow-through BRAM read: load + compare fit one state
    src = """
void f(co_stream o) {
  uint8 a[4] = {9};
  uint32 r;
  r = a[0] > 3;
  co_stream_write(o, r);
}
"""
    fs, func = sched(src)
    assert fs.blocks[func.entry].length == 1


def test_instr_depth_recorded():
    fs, func = sched("""
void f(co_stream o) {
  uint32 a;
  a = (1 + 2) + 3;
  co_stream_write(o, a);
}
""")
    entry = fs.blocks[func.entry]
    assert max(entry.instr_depth.values()) >= 2
