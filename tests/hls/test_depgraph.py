"""Unit tests for dependence construction and address disambiguation."""

from repro.hls.depgraph import build_depgraph, provably_distinct, stream_key
from repro.ir.ops import OpKind
from tests.helpers import lower_one


def block_of(src):
    func = lower_one(src)
    # the loop body block holds the interesting instructions
    for name, block in func.blocks.items():
        if name.startswith("body"):
            return block
    return func.blocks[func.entry]


def test_raw_edge_on_temps():
    block = block_of("""
void f(co_stream input, co_stream output) {
  uint32 x; uint32 y;
  while (co_stream_read(input, &x)) {
    y = x + 1;
    co_stream_write(output, y * 2);
  }
}
""")
    g = build_depgraph(block)
    # the mul depends on the add's result chainably or later
    assert any(preds for preds in g.preds)


def test_same_address_store_load_ordered():
    block = block_of("""
void f(co_stream input, co_stream output) {
  uint32 x; uint32 buf[8];
  while (co_stream_read(input, &x)) {
    buf[x & 7] = x;
    co_stream_write(output, buf[x & 7]);
  }
}
""")
    g = build_depgraph(block)
    idx = {i: ins.op for i, ins in enumerate(block.instrs)}
    load_i = next(i for i, op in idx.items() if op == OpKind.LOAD)
    store_i = next(i for i, op in idx.items() if op == OpKind.STORE)
    assert any(j == store_i and d == 1 for j, d in g.preds[load_i])


def test_distinct_offsets_disambiguated():
    block = block_of("""
void f(co_stream input, co_stream output) {
  uint32 x; uint32 i; uint32 buf[16];
  i = 0;
  while (co_stream_read(input, &x)) {
    buf[i & 15] = x;
    co_stream_write(output, buf[(i + 8) & 15]);
    i = i + 1;
  }
}
""")
    g = build_depgraph(block)
    idx = {i: ins.op for i, ins in enumerate(block.instrs)}
    load_i = next(i for i, op in idx.items() if op == OpKind.LOAD)
    store_i = next(i for i, op in idx.items() if op == OpKind.STORE)
    assert not any(j == store_i for j, _d in g.preds[load_i])


def test_provably_distinct_constants():
    block = block_of("""
void f(co_stream input, co_stream output) {
  uint32 x; uint32 buf[8];
  while (co_stream_read(input, &x)) {
    buf[0] = x;
    co_stream_write(output, buf[3]);
  }
}
""")
    g = build_depgraph(block)
    idx = {i: ins.op for i, ins in enumerate(block.instrs)}
    load_i = next(i for i, op in idx.items() if op == OpKind.LOAD)
    store_i = next(i for i, op in idx.items() if op == OpKind.STORE)
    assert not any(j == store_i for j, _d in g.preds[load_i])
    assert provably_distinct(
        block, block.instrs[store_i].args[0], block.instrs[load_i].args[0],
        len(block.instrs),
    )


def test_offset_wrapping_mask_alias_conservative():
    # offsets differing by the mask period DO alias: must stay ordered
    block = block_of("""
void f(co_stream input, co_stream output) {
  uint32 x; uint32 i; uint32 buf[16];
  i = 0;
  while (co_stream_read(input, &x)) {
    buf[i & 15] = x;
    co_stream_write(output, buf[(i + 16) & 15]);
    i = i + 1;
  }
}
""")
    g = build_depgraph(block)
    idx = {i: ins.op for i, ins in enumerate(block.instrs)}
    load_i = next(i for i, op in idx.items() if op == OpKind.LOAD)
    store_i = next(i for i, op in idx.items() if op == OpKind.STORE)
    assert any(j == store_i for j, _d in g.preds[load_i])


def test_different_bases_conservative():
    block = block_of("""
void f(co_stream input, co_stream output) {
  uint32 x; uint32 j; uint32 buf[8];
  j = 3;
  while (co_stream_read(input, &x)) {
    buf[x & 7] = x;
    co_stream_write(output, buf[j & 7]);
  }
}
""")
    g = build_depgraph(block)
    idx = {i: ins.op for i, ins in enumerate(block.instrs)}
    load_i = next(i for i, op in idx.items() if op == OpKind.LOAD)
    store_i = next(i for i, op in idx.items() if op == OpKind.STORE)
    assert any(j2 == store_i for j2, _d in g.preds[load_i])


def test_stream_ops_totally_ordered_per_stream():
    block = block_of("""
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    co_stream_write(output, x);
    co_stream_write(output, x + 1);
  }
}
""")
    g = build_depgraph(block)
    writes = [i for i, ins in enumerate(block.instrs)
              if ins.op == OpKind.STREAM_WRITE]
    assert any(j == writes[0] and d == 1 for j, d in g.preds[writes[1]])


def test_stream_key_distinguishes_taps_and_streams():
    from repro.ir.instr import Instr

    a = Instr(OpKind.STREAM_WRITE, [], [], {"stream": "x"})
    b = Instr(OpKind.TAP_READ, [], [], {"channel": "x"})
    assert stream_key(a) != stream_key(b)
