"""Unit tests for the cycle-accurate execution model."""

import pytest

from repro.errors import SimulationError
from repro.hls.cyclemodel import Channel, ProcessExec
from tests.helpers import compile_one, interp_outputs, lower_one, run_cycle_model


def test_channel_fifo_semantics():
    ch = Channel("c", depth=2)
    assert ch.can_push()
    ch.push(1)
    ch.push(2)
    assert not ch.can_push()
    assert ch.pop() == 1
    ch.close()
    assert not ch.at_eos
    assert ch.pop() == 2
    assert ch.at_eos


def test_channel_overflow_raises():
    ch = Channel("c", depth=1)
    ch.push(1)
    with pytest.raises(SimulationError):
        ch.push(2)


def test_unbounded_channel_never_full():
    ch = Channel("c", depth=1, unbounded=True)
    for i in range(100):
        ch.push(i)
    assert ch.max_occupancy == 100


def test_sequential_process_matches_interpreter():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x; uint32 acc;
  uint8 hist[8] = {1, 2};
  acc = 0;
  while (co_stream_read(input, &x)) {
    acc += x;
    hist[x & 7] = hist[x & 7] + 1;
    co_stream_write(output, acc + hist[x & 7]);
  }
  co_stream_close(output);
}
"""
    data = [3, 1, 4, 1, 5, 9, 2, 6]
    _, sw = interp_outputs(lower_one(src), {"input": data})
    cp = compile_one(src)
    _, hw = run_cycle_model(cp, {"input": data})
    assert hw["output"] == sw["output"]


def test_pipelined_process_matches_interpreter():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    co_stream_write(output, (x ^ 21) + 3);
  }
  co_stream_close(output);
}
"""
    data = list(range(40))
    _, sw = interp_outputs(lower_one(src), {"input": data})
    cp = compile_one(src)
    pe, hw = run_cycle_model(cp, {"input": data})
    assert hw["output"] == sw["output"]


def test_pipeline_throughput_matches_ii():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    co_stream_write(output, x + 1);
  }
  co_stream_close(output);
}
"""
    cp = compile_one(src)
    ps = next(iter(cp.schedule.pipelines.values()))
    n = 64
    pe, hw = run_cycle_model(cp, {"input": list(range(1, n + 1))})
    # total ~= fill + n * II + drain/close epsilon
    assert pe.cycles <= ps.latency + n * ps.ii + 6
    assert len(hw["output"]) == n


def test_predicated_store_executes_conditionally():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x; uint32 buf[4];
  buf[0] = 7;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    if (x > 10) { buf[0] = x; }
    co_stream_write(output, buf[0]);
  }
  co_stream_close(output);
}
"""
    cp = compile_one(src)
    _, hw = run_cycle_model(cp, {"input": [1, 50, 2]})
    assert hw["output"] == [7, 50, 50]


def test_stall_on_empty_input_then_progress():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  co_stream_read(input, &x);
  co_stream_write(output, x);
}
"""
    cp = compile_one(src)
    cin = Channel("i")
    cout = Channel("o", depth=16)
    pe = ProcessExec(cp.schedule, {"input": cin, "output": cout})
    for _ in range(5):
        assert pe.tick() == "stalled"
    cin.push(42)
    statuses = [pe.tick() for _ in range(4)]
    assert "active" in statuses
    assert list(cout.queue) == [42]
    assert pe.stall_cycles == 5


def test_backpressure_on_full_output():
    src = """
void f(co_stream output) {
  uint32 i;
  for (i = 0; i < 8; i++) { co_stream_write(output, i); }
}
"""
    cp = compile_one(src)
    cout = Channel("o", depth=2)
    pe = ProcessExec(cp.schedule, {"output": cout})
    for _ in range(50):
        pe.tick()
    assert not pe.done
    assert len(cout.queue) == 2
    # draining un-stalls the process
    drained = []
    for _ in range(200):
        if cout.can_pop():
            drained.append(cout.pop())
        pe.tick()
        if pe.done:
            break
    assert pe.done
    assert drained + list(cout.queue) == list(range(8))


def test_taps_emit_records():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x < 100);
    co_stream_write(output, x);
  }
  co_stream_close(output);
}
"""
    from repro.core.parallelize import parallelize_function
    from repro.ir.transform import eliminate_dead_code

    func = lower_one(src)
    parallelize_function(func, "f", lambda s: 1, share=True)
    eliminate_dead_code(func)
    from repro.hls.compiler import compile_process

    cp = compile_process(func)
    _, outs = run_cycle_model(cp, {"input": [5, 6]})
    assert outs["tap:f__tap0"] == [(5,), (6,)]


def test_trace_reports_waiting_channel():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  co_stream_read(input, &x);
  co_stream_write(output, x);
}
"""
    cp = compile_one(src)
    cin = Channel("inch")
    cout = Channel("outch")
    pe = ProcessExec(cp.schedule, {"input": cin, "output": cout})
    pe.tick()
    trace = pe.trace()
    assert "inch" in trace.waiting_on


def test_hardware_load_wraps_address():
    # hardware address decode wraps instead of trapping (unlike SW sim)
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  uint8 buf[4] = {10, 20, 30, 40};
  while (co_stream_read(input, &x)) {
    co_stream_write(output, buf[x]);
  }
  co_stream_close(output);
}
"""
    cp = compile_one(src)
    _, hw = run_cycle_model(cp, {"input": [5]})  # 5 % 4 == 1
    assert hw["output"] == [20]


def test_unbound_stream_rejected():
    src = "void f(co_stream a, co_stream b) { co_stream_close(b); }"
    cp = compile_one(src)
    with pytest.raises(SimulationError):
        ProcessExec(cp.schedule, {"a": Channel("a")})
