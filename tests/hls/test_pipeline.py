"""Unit tests for the loop pipeliner (II and latency — paper Table 4)."""

import pytest

from repro.errors import SchedulingError
from repro.hls.constraints import ScheduleConfig
from repro.hls.schedule import schedule_function
from tests.helpers import lower_one


def pipe(src, **cfg):
    func = lower_one(src)
    fs = schedule_function(func, ScheduleConfig(**cfg))
    assert len(fs.pipelines) == 1
    return next(iter(fs.pipelines.values()))


BASE_SCALAR = """
void p(co_stream input, co_stream output) {
  uint32 x;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    co_stream_write(output, x + 1);
  }
}
"""


def test_base_scalar_loop_ii1_latency2():
    ps = pipe(BASE_SCALAR)
    assert ps.ii == 1
    assert ps.latency == 2


def test_unoptimized_assertion_degrades_rate_to_2():
    # paper Table 4, scalar row: rate 1 -> 2, latency 2 -> 3
    ps = pipe("""
void p(co_stream input, co_stream output, co_stream fail) {
  uint32 x;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    if (!(x < 1000)) { co_stream_write(fail, 1); }
    co_stream_write(output, x + 1);
  }
}
""")
    assert ps.ii == 2
    assert ps.latency == 3


def test_guard_predicate_does_not_serialize():
    # the loop guard (read-ok) predicates the app's own write without cost
    ps = pipe(BASE_SCALAR)
    writes = [i for i in ps.instrs if i.op.value == "stream_write"]
    assert writes[0].attrs.get("pred") is not None
    assert writes[0].attrs.get("pred_is_guard") is True


def test_array_port_pressure_sets_rate():
    # store + load on one single-port array per iteration: II = 2
    ps = pipe("""
void p(co_stream input, co_stream output) {
  uint32 x; uint32 i; uint32 buf[16];
  i = 0;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    buf[i & 15] = x;
    co_stream_write(output, buf[(i + 8) & 15]);
    i = i + 1;
  }
}
""")
    assert ps.ii == 2


def test_array_assertion_unoptimized_rate_3():
    # paper Table 4, array row unoptimized: rate +1, latency +2
    base = pipe("""
void p(co_stream input, co_stream output) {
  uint32 x; uint32 i; uint32 buf[16];
  i = 0;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    buf[i & 15] = x;
    co_stream_write(output, buf[(i + 8) & 15]);
    i = i + 1;
  }
}
""")
    unopt = pipe("""
void p(co_stream input, co_stream output, co_stream fail) {
  uint32 x; uint32 i; uint32 buf[16];
  i = 0;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    buf[i & 15] = x;
    if (!(buf[i & 15] < 1000)) { co_stream_write(fail, 1); }
    co_stream_write(output, buf[(i + 8) & 15]);
    i = i + 1;
  }
}
""")
    assert unopt.ii == base.ii + 1
    assert unopt.latency == base.latency + 2


def test_extra_ports_restore_rate():
    ps = pipe("""
void p(co_stream input, co_stream output) {
  uint32 x; uint32 i; uint32 buf[16];
  i = 0;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    buf[i & 15] = x;
    co_stream_write(output, buf[(i + 8) & 15]);
    i = i + 1;
  }
}
""", extra_array_ports={"buf": 1})
    assert ps.ii == 1


def test_comb_accumulator_pipelines_at_ii1():
    # a same-stage accumulate (acc = acc + f(x)) is a legal II=1 recurrence
    ps = pipe("""
void p(co_stream input, co_stream output) {
  uint32 x; uint32 acc;
  acc = 0;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    acc = acc + x;
    co_stream_write(output, acc);
  }
}
""")
    assert ps.ii == 1


def test_loop_carried_recurrence_respected():
    # acc feeds a registered multiplier whose result redefines acc two
    # stages later: the recurrence forces II >= 2
    ps = pipe("""
void p(co_stream input, co_stream output) {
  uint32 x; uint32 acc;
  acc = 1;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    acc = acc * acc + x;
    co_stream_write(output, acc);
  }
}
""")
    assert ps.ii >= 2


def test_if_else_diamond_predicated():
    ps = pipe("""
void p(co_stream input, co_stream output) {
  uint32 x; uint32 y;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    if (x > 5) { y = x * 2; } else { y = x + 100; }
    co_stream_write(output, y);
  }
}
""")
    preds = [i.attrs.get("pred") for i in ps.instrs if i.attrs.get("pred")]
    assert preds  # both arms predicated
    assert ps.ii >= 1


def test_nested_loop_in_pipeline_rejected():
    with pytest.raises(SchedulingError):
        pipe("""
void p(co_stream input, co_stream output) {
  uint32 x; uint32 i;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    for (i = 0; i < 4; i++) { x = x + i; }
    co_stream_write(output, x);
  }
}
""")


def test_for_loop_pipelines_without_stream_guard():
    func = lower_one("""
void p(co_stream output) {
  uint32 i;
  #pragma CO PIPELINE
  for (i = 0; i < 16; i++) {
    co_stream_write(output, i * 3);
  }
  co_stream_close(output);
}
""")
    fs = schedule_function(func, ScheduleConfig())
    ps = next(iter(fs.pipelines.values()))
    assert ps.ii >= 1 and ps.ok is not None


def test_rate_property_matches_ii():
    ps = pipe(BASE_SCALAR)
    assert ps.rate == ps.ii
