"""Unit tests for RTL generation (module structure, not just text)."""

from repro.rtl import core as R
from tests.helpers import compile_one

SRC = """
void f(co_stream input, co_stream output) {
  uint32 x;
  uint8 mem[8] = {5};
  while (co_stream_read(input, &x)) {
    mem[x & 7] = x;
    if (x > 3) { co_stream_write(output, mem[x & 7] + 1); }
  }
  co_stream_close(output);
}
"""


def module():
    return compile_one(SRC).rtl


def test_ports_cover_both_stream_directions():
    m = module()
    names = {p.signal.name for p in m.ports}
    assert {"clk", "rst", "input_data", "input_empty", "input_eos",
            "input_re", "output_data", "output_full", "output_we",
            "output_close"} <= names


def test_port_directions():
    m = module()
    dirs = {p.signal.name: p.direction for p in m.ports}
    assert dirs["input_data"] == R.PortDir.IN
    assert dirs["input_re"] == R.PortDir.OUT
    assert dirs["output_data"] == R.PortDir.OUT
    assert dirs["output_full"] == R.PortDir.IN


def test_memory_with_initializer():
    m = module()
    (mem,) = m.memories
    assert mem.name == "mem" and mem.depth == 8 and mem.width == 8
    assert mem.init == (5,)


def test_state_count_matches_schedule():
    cp = compile_one(SRC)
    m = cp.rtl
    expected = sum(bs.length for bs in cp.schedule.blocks.values())
    assert len(m.states) == expected
    assert m.meta["done_state"] == expected


def test_every_state_has_next_state():
    m = module()
    assert all(sc.next_state is not None for sc in m.states)


def test_stream_states_have_stall_conditions():
    m = module()
    stalls = [sc for sc in m.states if sc.stall is not None]
    assert stalls  # the read and write states guard on handshakes


def test_registers_declared_for_all_scalars():
    cp = compile_one(SRC)
    m = cp.rtl
    reg_names = {r.name for r in m.regs}
    for scalar in cp.hw_func.scalars:
        assert f"r_{scalar}" in reg_names


def test_strobe_assign_targets():
    m = module()
    assigned = {sig.name for sig, _ in m.assigns}
    assert {"input_re", "output_we", "output_close", "output_data"} <= assigned


def test_tap_ports_generated_for_optimized_assertions():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x < 9);
    co_stream_write(output, x);
  }
}
"""
    from repro.core.parallelize import parallelize_function
    from repro.hls.compiler import compile_process
    from repro.ir.transform import eliminate_dead_code
    from tests.helpers import lower_one

    func = lower_one(src)
    parallelize_function(func, "f", lambda s: 1, share=True)
    eliminate_dead_code(func)
    m = compile_process(func).rtl
    names = {p.signal.name for p in m.ports}
    assert "tap_f__tap0_data" in names
    assert "tap_f__tap0_valid" in names


def test_checker_module_has_tapin_ports():
    src = """
void f(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x < 9);
    co_stream_write(output, x);
  }
}
"""
    from repro.core.parallelize import parallelize_function
    from repro.hls.compiler import compile_process
    from tests.helpers import lower_one

    func = lower_one(src)
    res = parallelize_function(func, "f", lambda s: 1, share=True)
    chk = compile_process(res.checkers[0].checker).rtl
    names = {p.signal.name for p in chk.ports}
    assert any(n.startswith("tapin_") and n.endswith("_data") for n in names)
    assert any(n.endswith("_re") for n in names)


def test_pipeline_meta_records_schedule():
    src = """
void p(co_stream input, co_stream output) {
  uint32 x;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) { co_stream_write(output, x + 1); }
  co_stream_close(output);
}
"""
    cp = compile_one(src)
    m = cp.rtl
    pipes = m.meta["pipelines"]
    assert len(pipes) == 1
    info = next(iter(pipes.values()))
    assert info["ii"] == 1 and info["latency"] == 2
