"""Unit tests for the software simulation engine."""

from repro.runtime.swsim import software_sim
from repro.runtime.taskgraph import Application

PASS_SRC = """
void p(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x < 100);
    co_stream_write(output, x * 2);
  }
  co_stream_close(output);
}
"""


def make_app(data, src=PASS_SRC, nprocs=1, **kw):
    app = Application("t")
    prev = None
    for i in range(nprocs):
        app.add_c_process(src.replace("void p(", f"void p{i}("),
                          name=f"p{i}", **kw)
        if prev is None:
            app.feed("in", f"p{i}.input", data=data)
        else:
            app.connect(f"l{i}", f"{prev}.output", f"p{i}.input")
        prev = f"p{i}"
    app.sink("out", f"{prev}.output")
    return app


def test_single_process_pipeline():
    res = software_sim(make_app([1, 2, 3]))
    assert res.completed and not res.aborted
    assert res.outputs["out"] == [2, 4, 6]


def test_multi_process_chain():
    res = software_sim(make_app([1, 2], nprocs=3))
    assert res.completed
    assert res.outputs["out"] == [8, 16]


def test_assertion_failure_aborts_all():
    res = software_sim(make_app([1, 500, 3]))
    assert res.aborted and not res.completed
    assert res.aborted_by is not None
    assert len(res.stderr) == 1
    assert "Assertion failed: x < 100" in res.stderr[0]
    assert res.outputs["out"] == [2]


def test_nabort_reports_and_continues():
    app = make_app([1, 500, 3])
    app.nabort = True
    res = software_sim(app)
    assert res.completed and not res.aborted
    assert len(res.failures) == 1
    assert res.outputs["out"] == [2, 1000, 6]


def test_protocol_deadlock_detected():
    # consumer waits on a stream nobody ever writes or closes
    src = """
void p(co_stream input, co_stream output) {
  uint32 x;
  co_stream_read(input, &x);
  co_stream_write(output, x);
  co_stream_close(output);
}
"""
    app = Application("t")
    app.add_c_process(src, name="a")
    app.add_c_process(src.replace("void p(", "void q("), function="q", name="b")
    # b's input comes from a, but a waits on a feeder with no data that we
    # leave unclosed by wiring it as an internal stream from b (a cycle)
    app.connect("ab", "a.output", "b.input")
    app.connect("ba", "b.output", "a.input")
    res = software_sim(app)
    assert not res.completed
    assert set(res.deadlocked) == {"a", "b"}


def test_daemon_processes_do_not_block_completion():
    app = make_app([1])
    checker_src = """
void chk(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) { co_stream_write(output, x); }
}
"""
    pd = app.add_c_process(checker_src, name="chk", daemon=True)
    app.feed("chk_in", "chk.input", data=[])
    app.sink("chk_out", "chk.output")
    # the daemon's feeder closes immediately, so it drains; either way the
    # app's completion is decided by p0 alone
    res = software_sim(app)
    assert res.completed
    _ = pd


def test_ext_funcs_sw_variant_used():
    src = """
void p(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    co_stream_write(output, ext_hdl(x));
  }
  co_stream_close(output);
}
"""
    app = Application("t")
    app.add_c_process(src, name="p", ext_sw={"ext_hdl": lambda v: v + 100},
                      ext_hw={"ext_hdl": lambda v: v + 999})
    app.feed("in", "p.input", data=[1])
    app.sink("out", "p.output")
    res = software_sim(app)
    assert res.outputs["out"] == [101]  # SW model, not HW


def test_failure_message_matches_ansi_c_format():
    res = software_sim(make_app([500]))
    line = res.stderr[0]
    assert line.startswith("Assertion failed: ")
    assert ", file " in line and ", line " in line and ", function " in line
