"""Unit tests for the application/task-graph model."""

import pytest

from repro.runtime.taskgraph import Application, Endpoint, GraphError

SRC = """
void p(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) { co_stream_write(output, x); }
  co_stream_close(output);
}
"""


def test_endpoint_parse():
    ep = Endpoint.parse("proc.port")
    assert ep.process == "proc" and ep.port == "port"
    with pytest.raises(GraphError):
        Endpoint.parse("noport")


def test_add_c_process_infers_single_function():
    app = Application("t")
    pd = app.add_c_process(SRC)
    assert pd.name == "p"
    assert pd.stream_params == ["input", "output"]


def test_ambiguous_function_requires_name():
    app = Application("t")
    two = SRC + "\nvoid q(co_stream s) { co_stream_close(s); }"
    with pytest.raises(GraphError):
        app.add_c_process(two)
    pd = app.add_c_process(two, function="q")
    assert pd.name == "q"


def test_duplicate_process_rejected():
    app = Application("t")
    app.add_c_process(SRC, name="a")
    with pytest.raises(GraphError):
        app.add_c_process(SRC, name="a")


def test_feed_connect_sink_wiring():
    app = Application("t")
    app.add_c_process(SRC, name="a")
    app.add_c_process(SRC, name="b")
    app.feed("in", "a.input", data=[1])
    app.connect("mid", "a.output", "b.input")
    app.sink("out", "b.output")
    app.validate()
    binding = app.stream_binding("a")
    assert binding["input"].name == "in"
    assert binding["output"].name == "mid"
    assert app.streams["in"].cpu_fed
    assert app.streams["out"].cpu_bound
    assert not app.streams["mid"].cpu_fed


def test_unbound_stream_param_rejected():
    app = Application("t")
    app.add_c_process(SRC, name="a")
    app.feed("in", "a.input", data=[])
    with pytest.raises(GraphError):
        app.validate()


def test_double_binding_rejected():
    app = Application("t")
    app.add_c_process(SRC, name="a")
    app.feed("in", "a.input", data=[])
    app.feed("in2", "a.input", data=[])
    app.sink("out", "a.output")
    with pytest.raises(GraphError):
        app.validate()


def test_direction_mismatch_rejected():
    app = Application("t")
    app.add_c_process(SRC, name="a")
    # 'input' is read by the process but declared here as its producer
    app.sink("bad", "a.input")
    app.feed("in2", "a.output", data=[])
    with pytest.raises(GraphError):
        app.validate()


def test_duplicate_stream_rejected():
    app = Application("t")
    app.add_c_process(SRC, name="a")
    app.feed("s", "a.input", data=[])
    with pytest.raises(GraphError):
        app.sink("s", "a.output")


def test_nabort_define_sets_app_flag():
    app = Application("t")
    app.add_c_process(SRC, name="a", defines={"NABORT": ""})
    assert app.nabort


def test_assertion_sites_collected():
    src = SRC.replace("co_stream_write(output, x);",
                      "assert(x > 0); co_stream_write(output, x);")
    app = Application("t")
    app.add_c_process(src, name="a")
    sites = app.assertion_sites()
    assert len(sites) == 1 and sites[0][0] == "a"


def test_clone_is_independent():
    app = Application("t")
    app.add_c_process(SRC, name="a")
    app.feed("in", "a.input", data=[1, 2])
    app.sink("out", "a.output")
    clone = app.clone()
    clone.streams["in"].feeder_data.append(99)
    clone.processes["a"].func.blocks[
        clone.processes["a"].func.entry
    ].instrs.clear()
    assert app.streams["in"].feeder_data == [1, 2]
    assert app.processes["a"].func.blocks[app.processes["a"].func.entry]
