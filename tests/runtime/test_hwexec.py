"""Unit tests for hardware execution (board, collectors, notifier)."""

from repro.core.synth import SynthesisOptions, synthesize
from repro.runtime.hwexec import execute
from repro.runtime.swsim import software_sim
from repro.runtime.taskgraph import Application

SRC = """
void p(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x < 100);
    co_stream_write(output, x * 2);
  }
  co_stream_close(output);
}
"""


def make_app(data, nprocs=1):
    app = Application("t")
    prev = None
    for i in range(nprocs):
        app.add_c_process(SRC.replace("void p(", f"void p{i}("), name=f"p{i}")
        if prev is None:
            app.feed("in", f"p{i}.input", data=data)
        else:
            app.connect(f"l{i}", f"{prev}.output", f"p{i}.input")
        prev = f"p{i}"
    app.sink("out", f"{prev}.output")
    return app


def test_execute_matches_software_sim_outputs():
    app = make_app([1, 2, 3, 4])
    sw = software_sim(app)
    for level in ("none", "unoptimized", "optimized"):
        hw = execute(synthesize(app, assertions=level))
        assert hw.completed, level
        assert hw.outputs["out"] == sw.outputs["out"], level


def test_multiprocess_chain_over_board():
    app = make_app([5, 6], nprocs=3)
    hw = execute(synthesize(app, assertions="optimized"))
    assert hw.completed
    assert hw.outputs["out"] == [40, 48]


def test_failure_aborts_at_every_level():
    for level in ("unoptimized", "optimized"):
        hw = execute(synthesize(make_app([1, 500, 3]), assertions=level))
        assert hw.aborted, level
        assert "Assertion failed: x < 100" in hw.stderr[0]


def test_optimized_without_share_reports_failures_too():
    hw = execute(
        synthesize(make_app([500]), assertions="optimized",
                   options=SynthesisOptions(share=False))
    )
    assert hw.aborted
    assert "x < 100" in hw.stderr[0]


def test_nabort_collects_all_failures():
    hw = execute(synthesize(make_app([500, 1, 600]), assertions="optimized",
                            nabort=True))
    assert hw.completed and not hw.aborted
    assert len(hw.failures) >= 2
    assert hw.outputs["out"] == [1000, 2, 1200]


def test_level_none_never_fails():
    hw = execute(synthesize(make_app([500]), assertions="none"))
    assert hw.completed and not hw.failures
    assert hw.outputs["out"] == [1000]


def test_hang_detection_with_traces():
    src = """
void stuck(co_stream input, co_stream output) {
  uint32 x;
  co_stream_read(input, &x);
  co_stream_read(input, &x);
  co_stream_write(output, x);
  co_stream_close(output);
}
"""
    app = Application("t")
    app.add_c_process(src, name="stuck")
    # feeder supplies one word and never closes more: after EOS the second
    # read returns immediately, so to force a hang we use an internal
    # producer that stalls forever
    producer = """
void prod(co_stream input, co_stream output) {
  uint32 x;
  co_stream_read(input, &x);
  co_stream_write(output, x);
  while (x == x) { x = x; }
}
"""
    app2 = Application("t2")
    app2.add_c_process(producer, name="prod")
    app2.add_c_process(src, name="stuck")
    app2.feed("seed", "prod.input", data=[7])
    app2.connect("mid", "prod.output", "stuck.input")
    app2.sink("out", "stuck.output")
    hw = execute(synthesize(app2, assertions="none"), max_cycles=5000,
                 idle_limit=16)
    assert hw.hung
    assert any("stuck" in str(t) for t in hw.traces)


def test_process_stats_recorded():
    hw = execute(synthesize(make_app([1, 2]), assertions="optimized"))
    assert "p0" in hw.process_stats
    stats = hw.process_stats["p0"]
    assert stats["cycles"] > 0
    assert stats["stalls"] >= 0
    # the checker process pipelines one initiation per tapped assertion
    chk = hw.process_stats["p0__chk0"]
    assert chk["iterations"] >= 2


def test_board_single_word_per_cycle():
    # feeding N words takes at least N cycles over the multiplexed link
    n = 50
    hw = execute(synthesize(make_app(list(range(1, n + 1))), assertions="none"))
    assert hw.cycles >= n
    assert len(hw.outputs["out"]) == n


def test_empty_feed_closes_stream():
    hw = execute(synthesize(make_app([]), assertions="optimized"))
    assert hw.completed
    assert hw.outputs["out"] == []


def test_bitmask_decode_handles_more_than_32_assertions():
    # regression: the notifier used to scan a hard-coded 32-bit range, so
    # assertions packed above bit 31 of a wide shared word were dropped
    from repro.apps.loopback import build_loopback

    app = build_loopback(40, data=[0, 5])  # 0 violates `> 0` in all stages
    image = synthesize(app, assertions="optimized", nabort=True,
                       options=SynthesisOptions(share_word_width=64))
    decode = image.assert_decode["__collect0_out"]
    assert decode.mode == "bitmask"
    assert max(decode.table) == 39  # 40 assertions share one word

    # unit level: a word with only high bits set must still decode
    high_word = (1 << 39) | (1 << 32)
    hits = image.decode_failure("__collect0_out", high_word)
    assert len(hits) == 2

    # end to end: every stage's failure reaches the CPU notifier
    hw = execute(image)
    assert hw.completed
    assert len(hw.failures) == 40
    assert {site.ordinal for _, site in hw.failures} == {0}
    assert len({proc for proc, _ in hw.failures}) == 40


def test_nabort_failure_words_drain_after_processes_finish():
    # the data path finishes quickly; sticky failure words must still be
    # in flight through collectors and the multiplexed link, and the drain
    # condition has to wait for them rather than cut the run short
    data = [500] * 6  # every word violates x < 100 in every stage
    hw = execute(synthesize(make_app(data, nprocs=3), assertions="optimized",
                            nabort=True))
    assert hw.completed and not hw.aborted
    assert hw.reason == "completed"
    assert hw.outputs["out"] == [v * 8 for v in data]
    # one sticky failure per (stage, violating word) batch at minimum:
    # each of the 3 stages must have reported its assertion at least once
    assert {proc for proc, _ in hw.failures} == {"p0", "p1", "p2"}
    assert hw.first_failure_cycle is not None
    assert hw.first_failure_cycle <= hw.cycles


def test_timeout_and_deadlock_reasons_distinguishable():
    # same spinning-producer app as test_hang_detection_with_traces: the
    # spin is *active*, so a tight cycle budget ends in `timeout`, never
    # the idle-counter `deadlock`
    producer = """
void prod(co_stream input, co_stream output) {
  uint32 x;
  co_stream_read(input, &x);
  while (x == x) { x = x; }
}
"""
    app = Application("t3")
    app.add_c_process(producer, name="prod")
    app.feed("seed", "prod.input", data=[7])
    app.sink("out", "prod.output")
    hw = execute(synthesize(app, assertions="none"), max_cycles=3000,
                 idle_limit=16)
    assert hw.hung
    assert hw.reason == "timeout"
    assert hw.watchdog is not None and hw.watchdog.reason == "timeout"
