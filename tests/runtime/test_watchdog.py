"""Watchdog layer: termination classification, triage, quarantine."""

from repro.core.synth import synthesize
from repro.platform.report import execution_summary
from repro.runtime.hwexec import execute
from repro.runtime.taskgraph import Application
from repro.runtime.watchdog import (
    ABORTED,
    COMPLETED,
    DEADLOCK,
    HANG_REASONS,
    LIVELOCK,
    TERMINATIONS,
    TIMEOUT,
    WatchdogConfig,
)

#: terminates without closing its output -> the downstream reader blocks
#: forever on an open-but-dead channel, with zero system activity
NOCLOSE_SRC = """
void p(co_stream input, co_stream output) {
  uint32 x;
  co_stream_read(input, &x);
}
"""

#: spins actively on a flag that is never set -> livelock, not deadlock
LIVELOCK_SRC = """
void p(co_stream input, co_stream output) {
  uint32 x;
  uint32 flag;
  flag = 0;
  co_stream_read(input, &x);
  while (flag == 0) {
    x = x + 1;
  }
  co_stream_write(output, x);
  co_stream_close(output);
}
"""

PASS_SRC = """
void q(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    co_stream_write(output, x);
  }
  co_stream_close(output);
}
"""


def one_proc_app(src, data, name="p"):
    app = Application("wd")
    app.add_c_process(src, name=name)
    app.feed("in", f"{name}.input", data=list(data))
    app.sink("out", f"{name}.output")
    return app


def deadlock_app():
    app = Application("wd")
    app.add_c_process(NOCLOSE_SRC, name="p")
    app.add_c_process(PASS_SRC, name="q")
    app.feed("in", "p.input", data=[7])
    app.connect("mid", "p.output", "q.input")
    app.sink("out", "q.output")
    return app


def test_termination_vocabulary():
    assert set(HANG_REASONS) == {DEADLOCK, LIVELOCK, TIMEOUT}
    assert set(TERMINATIONS) == {COMPLETED, ABORTED, *HANG_REASONS}


def test_completed_reason():
    app = one_proc_app(PASS_SRC, [1, 2], name="q")
    res = execute(synthesize(app, assertions="none"))
    assert res.reason == COMPLETED
    assert not res.hung
    assert res.watchdog is None


def test_blocked_read_classified_as_deadlock():
    res = execute(synthesize(deadlock_app(), assertions="none"),
                  max_cycles=50_000)
    assert res.reason == DEADLOCK
    assert res.hung and not res.completed
    assert res.watchdog is not None
    assert res.watchdog.reason == DEADLOCK
    blocked = [t for t in res.watchdog.traces if t.process == "q"]
    assert blocked and "mid" in blocked[0].waiting_on


def test_active_spin_classified_as_livelock_not_deadlock():
    app = one_proc_app(LIVELOCK_SRC, [7])
    cfg = WatchdogConfig(max_cycles=50_000, livelock_window=2_000)
    res = execute(synthesize(app, assertions="none"), watchdog=cfg)
    assert res.reason == LIVELOCK
    assert res.hung
    assert res.watchdog.stagnant_cycles >= 2_000


def test_budget_exhaustion_mid_progress_is_timeout():
    app = one_proc_app(PASS_SRC, list(range(1, 200)), name="q")
    res = execute(synthesize(app, assertions="none"), max_cycles=40)
    assert res.reason == TIMEOUT
    assert res.hung and not res.completed


def test_legacy_idle_limit_argument_still_honored():
    res = execute(
        synthesize(deadlock_app(), assertions="none"),
        max_cycles=50_000,
        idle_limit=16,
    )
    assert res.reason == DEADLOCK
    assert res.watchdog.fired_at_cycle < 50_000


def test_starvation_fractions_are_sane():
    res = execute(synthesize(deadlock_app(), assertions="none"),
                  max_cycles=50_000)
    assert res.watchdog.starvation
    assert all(0.0 <= v <= 1.0 for v in res.watchdog.starvation.values())
    # a process blocked on a read forever is starved nearly all its cycles
    assert res.watchdog.starvation["q"] > 0.5


def test_quarantine_requires_nabort():
    app = one_proc_app(LIVELOCK_SRC, [7])
    cfg = WatchdogConfig(
        max_cycles=50_000, livelock_window=1_000, quarantine=True
    )
    res = execute(synthesize(app, assertions="none"), watchdog=cfg)
    # abort-on-failure image: quarantine must not engage
    assert res.reason == LIVELOCK
    assert res.quarantined == []


def test_quarantine_drains_app_under_nabort():
    app = Application("wd2")
    app.add_c_process(LIVELOCK_SRC, name="p")
    app.add_c_process(PASS_SRC, name="q")
    app.feed("in", "p.input", data=[7])
    app.connect("mid", "p.output", "q.input")
    app.sink("out", "q.output")
    cfg = WatchdogConfig(
        max_cycles=50_000, livelock_window=1_000, quarantine=True
    )
    image = synthesize(app, assertions="unoptimized", nabort=True)
    res = execute(image, watchdog=cfg)
    assert res.completed and res.reason == COMPLETED
    assert res.quarantined == ["p"]
    # the spinner never wrote a word, so the drained output is empty
    assert res.outputs["out"] == []
    # detection info survives the degraded completion
    assert res.watchdog is not None
    assert res.watchdog.reason == LIVELOCK
    assert res.process_stats["p"]["quarantined"]


def test_execution_summary_renders_classification():
    app = one_proc_app(LIVELOCK_SRC, [7])
    cfg = WatchdogConfig(max_cycles=50_000, livelock_window=1_000)
    res = execute(synthesize(app, assertions="none"), watchdog=cfg)
    text = "\n".join(execution_summary(res))
    assert "termination: livelock" in text
    assert "watchdog: livelock at cycle" in text
