"""Tests for board-level behaviour: multiplexed link, fairness, arbiter."""

from repro.core.synth import SynthesisOptions, synthesize
from repro.hls.cyclemodel import Channel
from repro.runtime.hwexec import CollectorSpec, _Arbiter, _Collector, execute
from repro.runtime.taskgraph import Application

TWO_IN_SRC = """
void merge(co_stream a, co_stream b, co_stream output) {
  uint32 x;
  uint32 y;
  while (co_stream_read(a, &x)) {
    co_stream_read(b, &y);
    co_stream_write(output, x + y);
  }
  co_stream_close(output);
}
"""


def test_two_feeders_share_the_link_fairly():
    app = Application("t")
    app.add_c_process(TWO_IN_SRC, name="merge")
    n = 24
    app.feed("fa", "merge.a", data=[1] * n)
    app.feed("fb", "merge.b", data=[10] * n)
    app.sink("out", "merge.output")
    hw = execute(synthesize(app, assertions="none"))
    assert hw.completed
    assert hw.outputs["out"] == [11] * n
    # one word per cycle total across both feeders: at least 2n cycles
    assert hw.cycles >= 2 * n


def test_collector_packs_bits_and_retries_when_full():
    taps = {"t0": Channel("t0", unbounded=True),
            "t1": Channel("t1", unbounded=True)}
    out = Channel("out", depth=1)
    spec = CollectorSpec(inputs=[("t0", 0), ("t1", 1)], output="out")
    col = _Collector(spec, taps, out)
    taps["t0"].push((1,))
    taps["t1"].push((1,))
    assert col.tick()
    assert out.pop() == 0b11
    # full output: the word stays pending, then flushes
    taps["t0"].push((1,))
    out.push(999)
    col.tick()
    assert col.pending == 1
    out.pop()
    col.tick()
    assert out.pop() == 1 and col.pending == 0


def test_arbiter_round_robin_order():
    from repro.core.multichecker import ArbiterSpec

    taps = {
        "a": Channel("a", unbounded=True),
        "b": Channel("b", unbounded=True),
        "m": Channel("m", unbounded=True),
    }
    spec = ArbiterSpec(inputs=["a", "b"], arities=[1, 1], offsets=[0, 1],
                       output="m", total_slots=2)
    arb = _Arbiter(spec, taps)
    taps["a"].push((7,))
    taps["a"].push((8,))
    taps["b"].push((9,))
    assert arb.tick()  # a first
    assert arb.tick()  # then b (round robin), not a again
    assert arb.tick()
    assert not arb.tick()
    records = [taps["m"].pop() for _ in range(3)]
    assert records[0] == (0, 7, 0)
    assert records[1] == (1, 0, 9)
    assert records[2] == (0, 8, 0)


def test_failure_streams_share_link_with_data():
    # a failure word must get through even while data saturates the link
    src = """
void p(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x != 5);
    co_stream_write(output, x);
  }
  co_stream_close(output);
}
"""
    app = Application("t")
    app.add_c_process(src, name="p", filename="p.c")
    app.feed("in", "p.input", data=list(range(1, 50)))
    app.sink("out", "p.output")
    hw = execute(synthesize(app, assertions="optimized",
                            options=SynthesisOptions(share=False)))
    assert hw.aborted
    assert "x != 5" in hw.stderr[0]
