"""DiagnosticSink: collect-vs-strict semantics, notes, ordering."""

import pytest

from repro.diagnostics.core import Diagnostic
from repro.diagnostics.sink import DiagnosticSink
from repro.diagnostics.span import Span
from repro.errors import DiagnosticError, LoweringError


def diag(code="RPR-L010", severity="error", line=1, msg="bad"):
    return Diagnostic(code=code, severity=severity, message=msg,
                      span=Span(file="t.c", line=line))


def test_collect_mode_accumulates_without_raising():
    sink = DiagnosticSink(strict=False)
    sink.emit(diag(severity="warning"))
    sink.emit(diag(severity="error"))
    sink.emit(diag(severity="error", line=2))
    assert len(sink) == 3
    assert sink.has_errors
    assert len(sink.errors) == 2


def test_strict_emit_raises_on_error_severity():
    sink = DiagnosticSink(strict=True)
    sink.emit(diag(severity="note"))  # non-errors never raise
    with pytest.raises(DiagnosticError) as exc_info:
        sink.emit(diag(code="RPR-T003"))
    assert exc_info.value.code == "RPR-T003"
    # the diagnostic was still recorded before the raise
    assert len(sink) == 2


def test_strict_capture_reraises_the_original_exception():
    sink = DiagnosticSink(strict=True)
    err = LoweringError("no goto", code="RPR-L010")
    with pytest.raises(LoweringError) as exc_info:
        sink.capture(err)
    assert exc_info.value is err
    assert len(sink) == 0  # strict capture records nothing


def test_collect_capture_converts_error_to_diagnostic():
    sink = DiagnosticSink(strict=False)
    sink.capture(LoweringError("no goto", code="RPR-L010",
                               span=Span(file="t.c", line=7)))
    assert [d.code for d in sink] == ["RPR-L010"]
    assert sink.diagnostics[0].span.line == 7


def test_note_attaches_to_most_recent_diagnostic():
    sink = DiagnosticSink(strict=False)
    sink.emit(diag())
    sink.note("while lowering function 'proc'")
    assert sink.diagnostics[0].notes == ("while lowering function 'proc'",)


def test_sorted_is_source_order():
    sink = DiagnosticSink(strict=False)
    sink.emit(diag(line=9))
    sink.emit(diag(line=2))
    sink.emit(diag(line=5))
    assert [d.span.line for d in sink.sorted()] == [2, 5, 9]


def test_raise_if_errors_raises_first_in_source_order():
    sink = DiagnosticSink(strict=False)
    sink.emit(diag(code="RPR-L011", line=9))
    sink.emit(diag(code="RPR-T003", line=2))
    with pytest.raises(DiagnosticError) as exc_info:
        sink.raise_if_errors()
    assert exc_info.value.code == "RPR-T003"
    DiagnosticSink(strict=False).raise_if_errors()  # empty sink: no-op
