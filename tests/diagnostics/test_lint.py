"""The CI lint that keeps every raise site coded."""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import lint_diagnostics  # noqa: E402


def test_src_tree_is_clean(capsys):
    rc = lint_diagnostics.main(["lint", str(REPO_ROOT / "src" / "repro")])
    out = capsys.readouterr()
    assert rc == 0, out.out
    assert "0 problem(s)" in out.err


def test_uncoded_raise_is_flagged(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "from repro.errors import ReproError\n"
        "class MyError(ReproError):\n"
        "    code_prefix = 'RPR-Z'\n"
        "def f():\n"
        "    raise MyError('oops')\n"
    )
    rc = lint_diagnostics.main(["lint", str(bad)])
    out = capsys.readouterr()
    assert rc == 1
    assert "without an explicit code=" in out.out
    assert "RPR-Z" in out.out  # the expected prefix is suggested


def test_wrong_prefix_and_malformed_codes_are_flagged(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "from repro.errors import ReproError\n"
        "class MyError(ReproError):\n"
        "    code_prefix = 'RPR-Z'\n"
        "def f():\n"
        "    raise MyError('a', code='RPR-Q001')\n"
        "def g():\n"
        "    raise MyError('b', code='Z1')\n"
    )
    rc = lint_diagnostics.main(["lint", str(bad)])
    out = capsys.readouterr()
    assert rc == 1
    assert "does not match the class's category prefix" in out.out.replace(
        "\n", " ")
    assert "not of the form" in out.out.replace("\n", " ")


def test_default_code_installers_and_splats_are_exempt(tmp_path, capsys):
    ok = tmp_path / "ok.py"
    ok.write_text(
        "from repro.errors import ReproError\n"
        "class AutoError(ReproError):\n"
        "    code_prefix = 'RPR-Z'\n"
        "    def __init__(self, message, **kwargs):\n"
        "        kwargs.setdefault('code', 'RPR-Z900')\n"
        "        super().__init__(message, **kwargs)\n"
        "def f():\n"
        "    raise AutoError('fine without a code')\n"
        "def g(**kw):\n"
        "    raise AutoError('splat hides the code', **kw)\n"
    )
    rc = lint_diagnostics.main(["lint", str(ok)])
    capsys.readouterr()
    assert rc == 0


def test_subclasses_inherit_prefixes_across_files(tmp_path, capsys):
    # class discovery runs to a fixpoint over all files, so a subclass in
    # one file inherits the prefix its base declares in another
    (tmp_path / "base.py").write_text(
        "from repro.errors import ReproError\n"
        "class BaseErr(ReproError):\n"
        "    code_prefix = 'RPR-Z'\n"
    )
    (tmp_path / "sub.py").write_text(
        "from base import BaseErr\n"
        "class SubErr(BaseErr):\n"
        "    pass\n"
        "def f():\n"
        "    raise SubErr('x', code='RPR-Q001')\n"
    )
    rc = lint_diagnostics.main(["lint", str(tmp_path)])
    out = capsys.readouterr()
    assert rc == 1
    assert "RPR-Z" in out.out
