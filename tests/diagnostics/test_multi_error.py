"""Multi-error recovery: one frontend run reports every error, located."""

from repro.diagnostics.engine import check_source, synth_diagnostics

MULTI_ERROR_SRC = """#include "missing.h"

void proc(co_stream input, co_stream output) {
  uint32 x;
  float y;
  while (co_stream_read(input, &x)) {
    if (x > 10) goto done;
    co_stream_write(output, x);
  }
done:
  co_stream_close(output);
}
"""


def test_three_plus_distinct_errors_in_one_run():
    res = check_source(MULTI_ERROR_SRC, filename="multi.c")
    assert res.has_errors
    errors = [d for d in res.diagnostics if d.is_error]
    # bad include (preprocessor) + unknown type + goto + label (lowering):
    # three phases survive each other's failures in a single pass
    assert len(errors) >= 3
    codes = {d.code for d in errors}
    assert {"RPR-P005", "RPR-T003", "RPR-L010"} <= codes


def test_every_error_is_span_located_in_source_order():
    res = check_source(MULTI_ERROR_SRC, filename="multi.c")
    errors = [d for d in res.diagnostics if d.is_error]
    assert all(d.span is not None and d.span.file == "multi.c"
               for d in errors)
    lines = [d.span.line for d in errors]
    assert lines == sorted(lines)
    by_code = {d.code: d.span.line for d in errors}
    assert by_code["RPR-P005"] == 1   # the #include line
    assert by_code["RPR-T003"] == 5   # 'float y;'


def test_render_shows_carets_and_codes():
    res = check_source(MULTI_ERROR_SRC, filename="multi.c")
    text = res.render(color=False)
    assert "RPR-T003" in text
    assert "float y;" in text     # the source excerpt
    assert "^" in text            # the caret underline


def test_hard_parse_error_still_reported_once():
    # an unrecoverable pycparser rejection can't co-report with lowering
    # errors (the AST is gone) but must surface as one coded diagnostic
    res = check_source("void p(co_stream a) { uint32 x = ; }",
                       filename="broken.c")
    errors = [d for d in res.diagnostics if d.is_error]
    assert len(errors) == 1
    assert errors[0].code.startswith("RPR-S")


def test_clean_source_has_no_diagnostics_and_synthesizes():
    src = """
void p(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    assert(x < 100);
    co_stream_write(output, x + 1);
  }
  co_stream_close(output);
}
"""
    check, diags = synth_diagnostics(src, filename="ok.c")
    assert not check.has_errors
    assert diags == []


def test_synth_diagnostics_covers_frontend_errors():
    check, diags = synth_diagnostics(MULTI_ERROR_SRC, filename="multi.c")
    assert check.has_errors
    assert {d["code"] for d in diags} >= {"RPR-P005", "RPR-T003", "RPR-L010"}
