"""ReproError carrier fields, pickling, and the exception bridge."""

import pickle

import pytest

from repro.diagnostics.bridge import (
    INTERNAL_ERROR_CODE,
    diagnostic_from_exception,
    diagnostics_from_exception,
)
from repro.diagnostics.span import Span
from repro.errors import (
    CODE_PREFIXES,
    DeadlockError,
    LoweringError,
    PreprocessorError,
    ReproError,
    ReproTypeError,
    TypeError_,
    error_classes,
)
from repro.lab.executor import LabExecutor


def test_default_code_is_category_prefix_000():
    assert LoweringError("x").code == "RPR-L000"
    assert ReproError("x").code == "RPR-E000"


def test_deadlock_error_defaults_to_hang_code():
    err = DeadlockError("all blocked", traces={"p": ["read a"]})
    assert err.code == "RPR-X900"
    assert err.traces == {"p": ["read a"]}


def test_typeerror_alias_is_repro_type_error():
    assert TypeError_ is ReproTypeError


def test_every_category_prefix_is_claimed_by_a_class():
    # W/Y/R prefixes live on classes defined outside repro.errors
    import repro.difftest.oracle    # noqa: F401
    import repro.lab.sweep          # noqa: F401
    import repro.runtime.taskgraph  # noqa: F401

    prefixes = {cls.code_prefix for cls in error_classes().values()}
    assert prefixes == set(CODE_PREFIXES)


def test_pickle_round_trip_preserves_all_carrier_fields():
    err = LoweringError(
        "unsupported statement Goto",
        code="RPR-L010",
        span=Span(file="t.c", line=7, col=17),
        notes=("while lowering 'proc'",),
        hint="restructure the control flow",
    )
    back = pickle.loads(pickle.dumps(err))
    assert type(back) is LoweringError
    assert back.message == err.message
    assert back.code == "RPR-L010"
    assert back.span == err.span
    assert back.notes == err.notes
    assert back.hint == err.hint


def test_pickle_round_trip_survives_custom_init_signatures():
    # PreprocessorError and DeadlockError have non-standard __init__s;
    # __reduce__ must bypass them (pool workers pickle these)
    pp = PreprocessorError("bad directive", filename="a.c", line=3,
                           code="RPR-P001")
    back = pickle.loads(pickle.dumps(pp))
    assert back.plain_message == "bad directive"
    assert back.span == Span(file="a.c", line=3)

    dl = DeadlockError("hang", traces={"p": ["x"]})
    back = pickle.loads(pickle.dumps(dl))
    assert back.traces == {"p": ["x"]}
    assert back.code == "RPR-X900"


def test_bridge_keeps_repro_error_codes_without_tracebacks():
    try:
        raise LoweringError("no goto", code="RPR-L010",
                            span=Span(file="t.c", line=7))
    except LoweringError as exc:
        diag = diagnostic_from_exception(exc)
    assert diag.code == "RPR-L010"
    assert diag.span.line == 7
    assert not any("Traceback" in n for n in diag.notes)


def test_bridge_wraps_foreign_exceptions_as_internal_errors():
    try:
        raise ValueError("boom")
    except ValueError as exc:
        diag = diagnostic_from_exception(exc)
    assert diag.code == INTERNAL_ERROR_CODE
    assert "ValueError: boom" in diag.message
    assert any("ValueError" in n for n in diag.notes)  # traceback kept
    assert "failure bundle" in diag.hint


def test_bridge_notes_foreign_causes_of_toolchain_errors():
    try:
        try:
            raise KeyError("width")
        except KeyError as cause:
            raise LoweringError("bad widths", code="RPR-L020") from cause
    except LoweringError as exc:
        diag = diagnostic_from_exception(exc)
    assert any("caused by KeyError" in n for n in diag.notes)


def _raise_coded(_item):
    raise ReproTypeError("unknown type 'float'", code="RPR-T003")


def test_executor_outcomes_carry_structured_diagnostics():
    outcomes = LabExecutor(jobs=1).map(_raise_coded, [0])
    (oc,) = outcomes
    assert oc.status == "failed"
    assert [d["code"] for d in oc.diagnostics] == ["RPR-T003"]
    assert diagnostics_from_exception(
        ReproTypeError("unknown type 'float'", code="RPR-T003")
    ) == oc.diagnostics


def test_diagnostic_rejects_unknown_severity():
    from repro.diagnostics.core import Diagnostic

    with pytest.raises(ValueError, match="severity"):
        Diagnostic(code="RPR-E000", severity="fatal", message="x")
