"""Failure bundles: round-trip, validation, bit-identical replay."""

import json

import pytest

from repro.diagnostics.bundle import (
    bundle_name,
    read_bundle,
    replay_bundle,
    write_bundle,
)
from repro.diagnostics.engine import synth_diagnostics
from repro.errors import ReproError

GOTO_SRC = """
void p(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    if (x > 10) goto done;
    co_stream_write(output, x);
  }
done:
  co_stream_close(output);
}
"""


def test_bundle_name_is_filesystem_safe():
    assert bundle_name("loopback(n=2)/optimized") == "loopback_n_2_optimized"
    assert bundle_name("///") == "point"


def test_write_read_round_trip(tmp_path):
    diags = [{"code": "RPR-L010", "severity": "error", "message": "no goto"}]
    path = write_bundle(tmp_path / "b", "synth", diags,
                        context={"filename": "t.c"}, source="void p() {}")
    bundle = read_bundle(path)
    assert bundle.kind == "synth"
    assert bundle.context == {"filename": "t.c"}
    assert bundle.diagnostics == diags
    assert bundle.source == "void p() {}"
    # the stored JSON is the canonical spelling replay compares against
    stored = (path / "diagnostics.json").read_text()
    assert stored == bundle.diagnostics_json()
    assert json.loads(stored) == {"diagnostics": diags}


def test_write_rejects_unknown_kind(tmp_path):
    with pytest.raises(ReproError) as exc_info:
        write_bundle(tmp_path / "b", "mystery", [])
    assert exc_info.value.code == "RPR-E010"


def test_read_rejects_non_bundles_and_bad_schemas(tmp_path):
    with pytest.raises(ReproError) as exc_info:
        read_bundle(tmp_path)
    assert exc_info.value.code == "RPR-E011"

    bad = tmp_path / "bad"
    bad.mkdir()
    (bad / "manifest.json").write_text(
        json.dumps({"schema": 99, "kind": "synth"}))
    with pytest.raises(ReproError) as exc_info:
        read_bundle(bad)
    assert exc_info.value.code == "RPR-E012"

    weird = tmp_path / "weird"
    weird.mkdir()
    (weird / "manifest.json").write_text(
        json.dumps({"schema": 1, "kind": "mystery"}))
    with pytest.raises(ReproError) as exc_info:
        read_bundle(weird)
    assert exc_info.value.code == "RPR-E013"


def test_synth_bundle_replays_bit_identically(tmp_path):
    _check, diags = synth_diagnostics(GOTO_SRC, filename="goto.c")
    assert diags
    path = write_bundle(tmp_path / "b", "synth", diags,
                        context={"filename": "goto.c"}, source=GOTO_SRC)
    result = replay_bundle(path)
    assert result.ok
    assert result.expected == result.actual
    assert [d["code"] for d in result.diagnostics] == ["RPR-L010", "RPR-L010"]


def test_tampered_diagnostics_fail_to_reproduce(tmp_path):
    _check, diags = synth_diagnostics(GOTO_SRC, filename="goto.c")
    diags[0]["message"] = "something else entirely"
    path = write_bundle(tmp_path / "b", "synth", diags,
                        context={"filename": "goto.c"}, source=GOTO_SRC)
    result = replay_bundle(path)
    assert not result.ok


def test_sweep_point_bundle_replays_bit_identically(tmp_path):
    from repro.diagnostics.bridge import diagnostics_from_exception
    from repro.lab.sweep import (
        AppSpec,
        SweepPoint,
        evaluate_point,
        point_bundle_context,
    )

    point = SweepPoint(
        point_id="csource/optimized",
        app=AppSpec.make("csource", source=GOTO_SRC, filename="goto.c"),
        level="optimized",
    )
    # mirror run_sweep's failure path: evaluate, capture, bundle
    with pytest.raises(ReproError) as exc_info:
        evaluate_point((point, tmp_path / "cache"))
    diags = diagnostics_from_exception(exc_info.value)
    context, source = point_bundle_context(point)
    assert source == GOTO_SRC  # pulled out of params into source.c
    assert "source" not in dict(context["point"]["app_params"])
    path = write_bundle(tmp_path / "b", "sweep", diags,
                        context=context, source=source)
    result = replay_bundle(path)
    assert result.ok
    assert result.diagnostics[0]["code"] == "RPR-L010"


def test_difftest_divergence_bundle_replays_bit_identically(tmp_path):
    from repro.difftest.oracle import divergence_diagnostics, run_difftest
    from repro.faults.ir import NarrowCompare

    src = """
void dt(co_stream input, co_stream output) {
  uint32 x;
  while (co_stream_read(input, &x)) {
    if (x > 70000) { co_stream_write(output, (uint32)(1)); }
    else { co_stream_write(output, (uint32)(0)); }
  }
  co_stream_close(output);
}
"""
    feed = [5, 131072]  # 131072 truncates to 0 at 16 bits
    report = run_difftest(src, feed, filename="seed0.c",
                          faults=(NarrowCompare(width=16),))
    assert not report.ok
    diags = divergence_diagnostics(report.divergence)
    assert [d["code"] for d in diags] == ["RPR-Y100"]
    path = write_bundle(
        tmp_path / "b", "difftest", diags,
        context={"feed": feed, "filename": "seed0.c",
                 "faults": [["NarrowCompare", {"width": 16}]],
                 "max_cycles": 200_000},
        source=src,
    )
    result = replay_bundle(path)
    assert result.ok
    # the recipe rebuilt the fault and reproduced the same divergence
    assert result.diagnostics == diags


def test_difftest_bundle_with_unknown_fault_is_rejected(tmp_path):
    path = write_bundle(tmp_path / "b", "difftest", [],
                        context={"feed": [1], "faults": [["NoSuchFault", {}]]},
                        source="void dt(co_stream input, co_stream output) {}")
    with pytest.raises(ReproError) as exc_info:
        replay_bundle(path)
    assert exc_info.value.code == "RPR-E016"


def test_sweep_failure_writes_replayable_bundle_end_to_end(tmp_path):
    from repro.lab.sweep import AppSpec, SweepSpec, run_sweep

    spec = SweepSpec.cross(
        "bundle-e2e",
        [AppSpec.make("csource", source=GOTO_SRC, filename="goto.c"),
         AppSpec.make("loopback", n=2)],
        levels=("optimized",),
    )
    # jobs=2: the failing point's error crosses the process-pool pickle
    # boundary, which chains a synthetic _RemoteTraceback cause onto it —
    # the bridge must not journal that, or replay stops being bit-identical
    result = run_sweep(spec, jobs=2, store_root=tmp_path / "runs",
                       cache_root=tmp_path / "cache", progress=False)
    assert result.manifest["counters"]["failed"] == 1
    assert result.manifest["counters"]["done"] == 1  # loopback survived
    (bundle_path,) = result.manifest["bundles"]
    replay = replay_bundle(bundle_path)
    assert replay.ok
    # the journaled record points at the same bundle and diagnostics
    failed = [r for r in result.records.values()
              if r.get("status") != "ok"]
    assert failed[0]["bundle"] == bundle_path
    assert failed[0]["diagnostics"] == replay.diagnostics
