"""Section 5.1, example 2: locating a hardware hang with assert(0) traces.

A DES-style worker completes in software simulation but hangs in hardware:
a memory *read* was emitted where a *write* belonged, so the flag the
process polls never changes. The paper's methodology:

1. sprinkle ``assert(0)`` trace points at important lines,
2. define ``NABORT`` so failures are reported without halting,
3. run both software simulation and hardware, and
4. compare which trace lines were reached — the first missing line
   brackets the hang.

The runtime's hang detector additionally reports the exact blocked source
line, something the paper could only get from a painful RTL testbench.

Run:  python examples/hang_tracing.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import execute, software_sim, synthesize  # noqa: E402
from repro.apps.verification import HANG_SOURCE, build_hang_app  # noqa: E402


def main() -> None:
    print("== the instrumented source (assert(0) trace points) ==")
    for i, line in enumerate(HANG_SOURCE.splitlines()[:22], start=1):
        marker = "  <-- trace" if "assert(0)" in line else ""
        print(f"  {i:2d}: {line}{marker}")

    app, faults = build_hang_app(with_traces=True)

    print("\n== software simulation (NABORT: report, don't halt) ==")
    sim = software_sim(app)
    sw_lines = sorted({site.line for _p, site in sim.failures})
    print(f"  completed={sim.completed}; trace lines reached: {sw_lines}")

    print("\n== hardware execution (read-for-write fault injected) ==")
    image = synthesize(app, assertions="unoptimized", faults=faults,
                       nabort=True)
    hw = execute(image, max_cycles=20_000, idle_limit=32)
    hw_lines = sorted({site.line for _p, site in hw.failures})
    print(f"  hung={hw.hung}; trace lines reached: {hw_lines}")

    missing = sorted(set(sw_lines) - set(hw_lines))
    print(f"\n  traces missing in hardware: {missing}")
    print("  => the hang lies between the last reached trace and the first "
          "missing one")

    print("\n== the runtime's own hang report ==")
    for trace in hw.traces:
        print("  ", trace)


if __name__ == "__main__":
    main()
