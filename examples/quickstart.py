"""Quickstart: synthesize an in-circuit assertion and watch it fire.

A minimal streaming filter with one ANSI-C assertion is:

1. software-simulated (the Impulse-C-style CPU model),
2. synthesized with optimized in-circuit assertions,
3. executed cycle-accurately as hardware, where the assertion catches a
   bad input with the exact ANSI-C failure message,
4. inspected: pipeline timing, resource usage, Fmax, generated Verilog.

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import (  # noqa: E402
    Application,
    estimate_fmax,
    estimate_image,
    execute,
    software_sim,
    synthesize,
)

FILTER_C = """
#include "co.h"

void clamp_filter(co_stream input, co_stream output) {
  uint32 x;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    assert(x < 1000);
    co_stream_write(output, x * 3 + 1);
  }
  co_stream_close(output);
}
"""


def main() -> None:
    app = Application("quickstart")
    app.add_c_process(FILTER_C, name="clamp_filter", filename="filter.c")
    app.feed("in", "clamp_filter.input", data=[1, 2, 3, 4, 5])
    app.sink("out", "clamp_filter.output")

    print("== software simulation (assertions run on the CPU) ==")
    sim = software_sim(app)
    print("  outputs:", sim.outputs["out"])

    print("\n== hardware synthesis ==")
    image = synthesize(app, assertions="optimized")
    cp = image.compiled["clamp_filter"]
    (latency, rate), = cp.pipeline_report().values()
    print(f"  pipeline: latency {latency} cycles, initiation interval {rate}")
    res = estimate_image(image)
    fmax = estimate_fmax(image, resources=res)
    print(f"  resources: {res.total.comb_aluts} ALUTs, "
          f"{res.total.registers} registers, {res.total.bram_bits} BRAM bits")
    print(f"  Fmax: {fmax.fmax_mhz:.1f} MHz")

    print("\n== cycle-accurate hardware execution ==")
    hw = execute(image)
    print(f"  outputs: {hw.outputs['out']}  ({hw.cycles} cycles)")

    print("\n== the assertion fires in circuit ==")
    bad = Application("quickstart-bad")
    bad.add_c_process(FILTER_C, name="clamp_filter", filename="filter.c")
    bad.feed("in", "clamp_filter.input", data=[1, 2, 9999, 4])
    bad.sink("out", "clamp_filter.output")
    hw_bad = execute(synthesize(bad, assertions="optimized"))
    for line in hw_bad.stderr:
        print("  stderr:", line)
    print(f"  application aborted: {hw_bad.aborted}")

    print("\n== generated Verilog (first lines) ==")
    for line in cp.verilog().splitlines()[:12]:
        print("  " + line)


if __name__ == "__main__":
    main()
