"""Timing assertions: the paper's future work, working end to end.

Section 6 of the paper: "Future work includes adding the ability for
assertions to check the timing of the lines of code, which would be useful
for verifying timing properties of an application in terms of clock
cycles."

This example bounds a data-dependent loop at 12 cycles per input. Software
simulation cannot check this at all (it has no clock); in hardware a
latency monitor counts cycles between the markers and reports a violation
through the standard assertion notification path.

Run:  python examples/timing_assertions.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import Application, execute, software_sim, synthesize  # noqa: E402

SRC = """
#include "co.h"

void bounded_worker(co_stream input, co_stream output) {
  uint32 x;
  uint32 i;
  uint32 acc;
  while (co_stream_read(input, &x)) {
    co_latency_start(1);                 /* region 1 begins here */
    acc = 0;
    for (i = 0; i < x; i++) { acc += i; }
    co_latency_end(1, 12);               /* ...and must end within 12 cycles */
    co_stream_write(output, acc);
  }
  co_stream_close(output);
}
"""


def run(data, nabort=False):
    app = Application("timing")
    app.add_c_process(SRC, name="bounded_worker", filename="worker.c")
    app.feed("in", "bounded_worker.input", data=data)
    app.sink("out", "bounded_worker.output")
    sim = software_sim(app)
    hw = execute(synthesize(app, assertions="optimized", nabort=nabort))
    return sim, hw


def main() -> None:
    print("== inputs small enough to meet the 12-cycle bound ==")
    sim, hw = run([2, 3])
    print(f"  software sim: completed={sim.completed} (timing not checkable)")
    print(f"  hardware:     completed={hw.completed}, outputs={hw.outputs['out']}")

    print("\n== an input that blows the bound (x = 20 -> ~62 cycles) ==")
    sim, hw = run([2, 20])
    print(f"  software sim: completed={sim.completed}, failures={len(sim.failures)}")
    print(f"  hardware:     aborted={hw.aborted}")
    for line in hw.stderr:
        print("  stderr:", line)

    print("\n== NABORT: keep running, collect every violation ==")
    _sim, hw = run([20, 2, 30], nabort=True)
    print(f"  completed={hw.completed}, violations={len(hw.failures)}, "
          f"outputs={hw.outputs['out']}")
    for line in hw.stderr:
        print("  stderr:", line)


if __name__ == "__main__":
    main()
