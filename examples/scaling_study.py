"""Figures 4 and 5 in miniature: assertion scalability on the loopback.

Sweeps the streaming loopback from 1 to 64 processes (one assertion per
process) and prints, for each configuration, the ALUT overhead and the
estimated Fmax of the unoptimized (one failure stream per process) and
optimized (32 failure bits per shared stream) assertion builds.

Run:  python examples/scaling_study.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import estimate_fmax, estimate_image, execute, synthesize  # noqa: E402
from repro.apps.loopback import build_loopback  # noqa: E402
from repro.platform.device import EP2S180  # noqa: E402


def main() -> None:
    print(f"{'procs':>5} | {'orig MHz':>8} {'unopt MHz':>9} {'opt MHz':>8} | "
          f"{'unopt ALUT ovh':>14} {'opt ALUT ovh':>13}")
    print("-" * 70)
    for n in (1, 4, 16, 32, 64):
        app = build_loopback(n)
        stats = {}
        for level in ("none", "unoptimized", "optimized"):
            img = synthesize(app, assertions=level)
            res = estimate_image(img)
            stats[level] = (res.total.comb_aluts,
                            estimate_fmax(img, resources=res).fmax_mhz)
        base_alut = stats["none"][0]
        print(f"{n:>5} | {stats['none'][1]:>8.1f} "
              f"{stats['unoptimized'][1]:>9.1f} "
              f"{stats['optimized'][1]:>8.1f} | "
              f"{100 * (stats['unoptimized'][0] - base_alut) / EP2S180.aluts:>13.2f}% "
              f"{100 * (stats['optimized'][0] - base_alut) / EP2S180.aluts:>12.2f}%")

    print("\nFunctional check at 8 processes (optimized, cycle-accurate):")
    app = build_loopback(8, data=list(range(1, 17)))
    hw = execute(synthesize(app, assertions="optimized"))
    ok = hw.outputs["drain"] == list(range(1, 17))
    print(f"  completed={hw.completed}, identity preserved={ok}, "
          f"cycles={hw.cycles}")


if __name__ == "__main__":
    main()
