"""Triple-DES case study (paper Table 1): verify decryption in circuit.

Encrypted text is streamed to the FPGA process (full FIPS 46-3 DES, EDE
order), decrypted, and each output byte is guarded by the paper's two
ASCII-range assertions. The example decrypts a message, prints the
overhead table, and shows the assertions catching a corrupted ciphertext
block — a realistic "wrong key / corrupted file" failure.

Run:  python examples/tripledes_verification.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import execute, software_sim, synthesize  # noqa: E402
from repro.apps.des_tables import unpack_text  # noqa: E402
from repro.apps.tripledes import build_tdes_app, expected_blocks  # noqa: E402
from repro.platform.report import overhead_report  # noqa: E402


def main() -> None:
    text = b"Attack at dawn."
    app = build_tdes_app(text)

    print("== software simulation ==")
    sim = software_sim(app)
    print("  decrypted:", unpack_text(sim.outputs["plain"]))

    print("\n== cycle-accurate hardware execution (optimized assertions) ==")
    image = synthesize(app, assertions="optimized")
    hw = execute(image, max_cycles=5_000_000)
    assert hw.outputs["plain"] == expected_blocks(text)
    print(f"  decrypted: {unpack_text(hw.outputs['plain'])} "
          f"({hw.cycles} cycles)")

    print("\n== Table 1: assertion overhead ==")
    original = synthesize(app, assertions="none")
    print(overhead_report(original, image).render(
        "TRIPLE-DES ASSERTION OVERHEAD (EP2S180)"))

    print("\n== corrupted ciphertext: the ASCII assertions catch it ==")
    bad = build_tdes_app(text)
    bad.streams["cipher"].feeder_data[0] ^= 0x0F0F
    hw_bad = execute(synthesize(bad, assertions="optimized"),
                     max_cycles=5_000_000)
    print(f"  aborted={hw_bad.aborted}")
    for line in hw_bad.stderr[:2]:
        print("  stderr:", line)


if __name__ == "__main__":
    main()
