"""Section 5.1, example 1: bugs that simulation misses and circuits hit.

The application carries two latent hardware-only bugs:

* the documented Impulse-C translation defect — a 64-bit comparison
  synthesized as a 5-bit comparison (4294967286 > 4294967296 is false in
  C; 22 > 0 is true in the faulty circuit), which drives an array address
  out of range; and
* an external HDL function whose hardware behaviour (an 8-bit wrapping
  incrementer) differs from the C model supplied for simulation.

Software simulation passes cleanly. In-circuit assertions catch both, with
the standard ANSI-C failure message naming file, line and expression.

Run:  python examples/debug_divergence.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import execute, software_sim, synthesize  # noqa: E402
from repro.apps.verification import build_divergence_app  # noqa: E402


def main() -> None:
    print("== bug 1: the narrow-comparison translation fault ==")
    app, faults = build_divergence_app()
    sim = software_sim(app)
    print(f"  software simulation: completed={sim.completed}, "
          f"assertion failures={len(sim.failures)}")

    image = synthesize(app, assertions="optimized", faults=faults)
    hw = execute(image, max_cycles=500_000)
    print(f"  hardware execution:  aborted={hw.aborted}")
    for line in hw.stderr:
        print("  stderr:", line)

    print("\n== bug 2: external HDL function vs its C simulation model ==")
    app2, faults2 = build_divergence_app(
        values=[255], inject_compare_bug=False, inject_ext_bug=True
    )
    sim2 = software_sim(app2)
    print(f"  software simulation: completed={sim2.completed}, "
          f"assertion failures={len(sim2.failures)}")
    hw2 = execute(synthesize(app2, assertions="optimized", faults=faults2),
                  max_cycles=500_000)
    print(f"  hardware execution:  aborted={hw2.aborted}")
    for line in hw2.stderr:
        print("  stderr:", line)

    print("\nBoth bugs are invisible to software simulation and caught by "
          "the in-circuit assertions, as in the paper's Figure 3.")


if __name__ == "__main__":
    main()
