"""Ensure the in-tree package is importable for pytest without installation.

The project is normally installed with ``pip install -e .``; this shim
keeps ``pytest`` working in environments where the editable install is
unavailable (e.g. offline CI without the ``wheel`` package).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
