"""Ablation — failure-channel packing width (DESIGN.md, Section 4.2 choice).

The paper packs 32 assertions per 32-bit stream. This ablation sweeps the
packing width to show the tradeoff: narrower words need more collector
processes and CPU streams (area + Fmax pressure); a single wide word is
the knee the paper chose. Each width is one cached lab point evaluated in
parallel workers.
"""

from conftest import lab_map, save_and_print

from repro.apps.loopback import build_loopback
from repro.core.synth import SynthesisOptions
from repro.lab.bench import synth
from repro.platform.resources import estimate_image
from repro.platform.timing import estimate_fmax
from repro.utils.tables import render_table

N = 64
WIDTHS = (1, 4, 8, 16, 32)


def _point(width: int | None) -> tuple:
    app = build_loopback(N)
    if width is None:  # the assertion-free baseline
        base = estimate_image(synth(app, assertions="none")).total.comb_aluts
        return ("base", base)
    img = synth(
        app,
        assertions="optimized",
        options=SynthesisOptions(share=True, share_word_width=width),
    )
    res = estimate_image(img)
    fmax = estimate_fmax(img, resources=res)
    n_streams = sum(
        1 for sd in img.app.streams.values()
        if sd.role == "assert_bitmask"
    )
    return (width, n_streams, res.total.comb_aluts, fmax.fmax_mhz)


def sweep():
    results = lab_map(_point, [None, *WIDTHS])
    base = results[0][1]
    rows = []
    for width, n_streams, aluts, fmax_mhz in results[1:]:
        rows.append([
            width,
            n_streams,
            aluts - base,
            f"{fmax_mhz:.1f}",
        ])
    return rows


def test_ablation_sharing_width(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["bits/stream", "failure streams", "ALUT overhead", "Fmax MHz"],
        rows,
        title=f"ABLATION: FAILURE-CHANNEL PACKING WIDTH ({N} assertions)",
    )
    save_and_print("ablation_sharing_width", table)
    # the paper's choice (32) must dominate 1-bit packing on both axes
    one_bit, full = rows[0], rows[-1]
    assert full[1] < one_bit[1]
    assert full[2] < one_bit[2]
    assert float(full[3]) > float(one_bit[3])
