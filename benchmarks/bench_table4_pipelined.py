"""Table 4 — pipelined single-comparison assertion overhead (Section 5.4).

Paper (latency / rate overhead in cycles):

    Assertion data structure   Unoptimized      Optimized
    Scalar variable              1 / 1            0 / 0
    Array                        2 / 1            1 / 0

Scalar: the conditional failure send degrades the rate from 1 to 2 — "a 2x
slow down"; parallelization removes it entirely ("a 2x speedup compared to
the unoptimized assertions"). Array: resource replication restores the
rate at the cost of one pipeline stage ("a 33% rate improvement over the
non-optimized version").

Latency and rate come straight from the modulo scheduler of the
synthesized process; the rate is additionally confirmed by cycle-accurate
execution (steady-state cycles per iteration == II). All synthesis runs
through the lab cache and the measurement points fan out across lab
workers.
"""

from conftest import lab_map, save_and_print

from repro.lab.bench import synth
from repro.runtime.hwexec import execute
from repro.runtime.taskgraph import Application
from repro.utils.tables import render_table

SCALAR = """
void p(co_stream input, co_stream output) {
  uint32 x;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    assert(x < 60000);
    co_stream_write(output, x + 1);
  }
  co_stream_close(output);
}
"""

ARRAY = """
void p(co_stream input, co_stream output) {
  uint32 x;
  uint32 i;
  uint32 buf[16];
  i = 0;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    buf[i & 15] = x;
    assert(buf[i & 15] < 60000);
    co_stream_write(output, buf[(i + 8) & 15]);
    i = i + 1;
  }
  co_stream_close(output);
}
"""

ROWS = [
    ("Scalar variable", SCALAR, (1, 1), (0, 0)),
    ("Array", ARRAY, (2, 1), (1, 0)),
]

LEVELS = ("none", "unoptimized", "optimized")
N1, N2 = 32, 96


def _pipeline_point(args: tuple) -> tuple:
    src, level = args
    app = Application("t4")
    app.add_c_process(src, name="p", filename="t4.c")
    app.feed("in", "p.input", data=[1])
    app.sink("out", "p.output")
    img = synth(app, assertions=level)
    (latency, rate), = img.compiled["p"].pipeline_report().values()
    return latency, rate


def _steady_point(args: tuple) -> int:
    src, level, n = args
    app = Application("t4")
    app.add_c_process(src, name="p", filename="t4.c")
    app.feed("in", "p.input", data=list(range(1, n + 1)))
    app.sink("out", "p.output")
    res = execute(synth(app, assertions=level), max_cycles=200_000)
    assert res.completed
    return res.process_stats["p"]["cycles"] - res.process_stats["p"]["stalls"]


def measure():
    static_points = [(src, level) for _l, src, _pu, _po in ROWS
                     for level in LEVELS]
    static = dict(zip(static_points, lab_map(_pipeline_point, static_points)))
    dyn_points = [(src, "optimized", n) for _l, src, _pu, _po in ROWS
                  for n in (N1, N2)]
    dyn_cycles = dict(zip(dyn_points, lab_map(_steady_point, dyn_points)))

    rows = []
    checks = []
    for label, src, paper_unopt, paper_opt in ROWS:
        base = static[(src, "none")]
        unopt = static[(src, "unoptimized")]
        opt = static[(src, "optimized")]
        d_unopt = (unopt[0] - base[0], unopt[1] - base[1])
        d_opt = (opt[0] - base[0], opt[1] - base[1])
        # dynamic confirmation: measured steady-state cycles/iter == rate
        dyn = (dyn_cycles[(src, "optimized", N2)]
               - dyn_cycles[(src, "optimized", N1)]) / (N2 - N1)
        rows.append([
            label,
            f"{d_unopt[0]} / {d_unopt[1]}",
            f"{d_opt[0]} / {d_opt[1]}",
            f"(paper: {paper_unopt[0]}/{paper_unopt[1]} and "
            f"{paper_opt[0]}/{paper_opt[1]})",
        ])
        checks.append((label, base, d_unopt, d_opt, paper_unopt, paper_opt,
                       dyn, opt[1]))
    return rows, checks


def test_table4_pipelined_overhead(benchmark):
    rows, checks = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = render_table(
        ["Assertion data structure", "Unopt lat/rate", "Opt lat/rate", ""],
        rows,
        title="TABLE 4: PIPELINED SINGLE-COMPARISON ASSERTION "
              "(latency / rate overhead, cycles)",
    )
    extra = []
    for label, base, *_rest in checks:
        extra.append(f"{label}: baseline latency {base[0]}, rate {base[1]}")
    save_and_print("table4_pipelined", table + "\n" + "\n".join(extra))

    for label, base, d_unopt, d_opt, paper_unopt, paper_opt, dyn, opt_rate in checks:
        assert d_unopt == paper_unopt, (label, d_unopt)
        assert d_opt == paper_opt, (label, d_opt)
        assert abs(dyn - opt_rate) < 0.15, (label, dyn, opt_rate)
    # the paper's array baseline: latency 2, rate 2
    array_base = checks[1][1]
    assert array_base == (2, 2)
    # the paper's scalar baseline: latency 2, rate 1
    assert checks[0][1] == (2, 1)
