"""Figure 5 — optimized assertion resource scalability (paper Section 5.3).

Paper: at 128 processes/assertions, unoptimized assertions cost 4.07% of
the EP2S180's ALUTs; sharing the failure channels (one 32-bit stream per
32 assertions) reduced that to 1.34% — "over a 3x improvement".
"""

from conftest import lab_map, save_and_print

from repro.apps.loopback import build_loopback
from repro.lab.bench import synth
from repro.platform.device import EP2S180
from repro.platform.resources import estimate_image
from repro.utils.tables import render_table

SIZES = (1, 2, 4, 8, 16, 32, 64, 128)


def _point(n: int) -> dict:
    app = build_loopback(n)
    return {
        level: estimate_image(synth(app, assertions=level)).total.comb_aluts
        for level in ("none", "unoptimized", "optimized")
    }


def sweep():
    rows = []
    overheads = {}
    for n, aluts in zip(SIZES, lab_map(_point, SIZES)):
        unopt_pct = 100.0 * (aluts["unoptimized"] - aluts["none"]) / EP2S180.aluts
        opt_pct = 100.0 * (aluts["optimized"] - aluts["none"]) / EP2S180.aluts
        overheads[n] = (unopt_pct, opt_pct)
        rows.append([
            n,
            aluts["none"],
            aluts["unoptimized"],
            aluts["optimized"],
            f"{unopt_pct:.2f}%",
            f"{opt_pct:.2f}%",
        ])
    return rows, overheads


def test_fig5_resource_scalability(benchmark):
    rows, overheads = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["processes", "orig ALUT", "unopt ALUT", "opt ALUT",
         "unopt ovh (device)", "opt ovh (device)"],
        rows,
        title="FIGURE 5: OPTIMIZED ASSERTION RESOURCE SCALABILITY (ALUTs)",
    )
    unopt128, opt128 = overheads[128]
    summary = (
        f"\n@128: unoptimized overhead {unopt128:.2f}% vs optimized "
        f"{opt128:.2f}% -> {unopt128 / opt128:.1f}x reduction"
        "\npaper @128: unoptimized 4.07% vs optimized 1.34% -> 3.0x reduction"
    )
    save_and_print("fig5_resource_scalability", table + summary)

    # shape: the paper's headline ">3x improvement" at 128 processes
    assert unopt128 / opt128 > 3.0
    # magnitudes in the same ballpark as the paper's percentages
    assert 2.0 < unopt128 < 9.0
    assert 0.4 < opt128 < 3.0
