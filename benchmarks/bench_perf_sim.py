"""Simulation-backend perf bench (compiled vs interpreted simulators).

Unlike the table benches, this one measures *our own tooling*: how much
faster the :mod:`repro.simc` compiled-simulation backend runs the paper's
workloads than the interpreted cycle model / RTL simulator. Every timed
pair is bit-identity-checked first (``repro.simc.bench`` raises on any
divergence), so the numbers can only exist if the backends agree.

The run regenerates ``results/BENCH_sim.json``; that file is committed
as the CI baseline for ``repro bench --baseline`` (speedup *ratios* are
machine-independent enough to gate on with a 30% threshold).
"""

import json
import os

from conftest import RESULTS_DIR, save_and_print

from repro.simc.bench import render_bench, run_bench

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))


def test_sim_backend_speedup(benchmark):
    doc = benchmark.pedantic(lambda: run_bench(quick=QUICK),
                             rounds=1, iterations=1)
    save_and_print("bench_sim", render_bench(doc))
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_sim.json"), "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")

    by_name = {e["name"]: e for e in doc["entries"]}
    # acceptance: >=5x on the Table-1/Table-2 apps (the committed
    # baseline records the measured 5.5x/8.7x); the test floor is 4x so
    # a noisy CI runner doesn't flake — the baseline gate in `repro
    # bench --baseline` is the precise regression check.
    assert by_name["tripledes"]["speedup"] > 4.0
    assert by_name["edge_detect"]["speedup"] > 4.0
    assert doc["geomean_speedup"] > 4.0
    # acceptance for the batched (SoA) execution mode: one
    # execute_batch call must beat the interpreter seed loop it
    # replaces by >=5x on the multi-seed workload, and still beat the
    # scalar *compiled* loop (dispatch amortization, not just codegen)
    batch = by_name["loopback_batch"]
    assert batch["speedup"] > 5.0
    assert batch["batch_speedup"] > 1.0
