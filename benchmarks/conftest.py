"""Benchmark harness plumbing: results directory, lab session, reporting.

Every benchmark regenerates paper tables from a sweep of synthesis points.
The harness routes those points through :mod:`repro.lab`:

* synthesis goes through a session-wide content-addressed cache
  (``repro.lab.bench.synth``), so a warm rerun of the whole suite performs
  zero re-synthesis;
* sweep-shaped benchmarks fan their points out with :func:`lab_map`, which
  wraps :class:`repro.lab.executor.LabExecutor` — ``REPRO_LAB_JOBS``
  selects the worker count (default: all cores, capped at 4); results come
  back in submission order, so the rendered tables are byte-identical to a
  serial run;
* cache statistics from every worker are aggregated and written to
  ``results/lab_manifest.json`` — ``misses == 0`` on a warm run is the
  proof of full cache coverage.

Set ``REPRO_LAB_JOBS=1`` to force the serial inline path and
``REPRO_LAB_CACHE`` to relocate (or pre-seed) the cache directory.
"""

import json
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# the cache location must be exported before any pool worker is spawned
os.environ.setdefault(
    "REPRO_LAB_CACHE", os.path.join(RESULTS_DIR, ".lab-cache")
)

from repro.lab import bench as lab_bench  # noqa: E402
from repro.lab.executor import LabExecutor  # noqa: E402

JOBS = int(os.environ.get("REPRO_LAB_JOBS")
           or min(4, os.cpu_count() or 1))

_SESSION_TABLES: list[str] = []
# seeded with the classic five; any newer CacheStats fields (the
# per-process/lease counters) merge in on first sight
_SESSION_STATS = {"hits": 0, "misses": 0, "stores": 0, "evictions": 0,
                  "errors": 0}
_SESSION_T0 = time.monotonic()


def save_and_print(name: str, text: str) -> None:
    """Write a reproduction table both to stdout and to results/<name>.txt."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    _SESSION_TABLES.append(text)
    print()
    print(text)


def lab_map(fn, items):
    """Evaluate picklable ``fn`` over ``items`` through the lab executor.

    Results come back in item order. Worker-side cache statistics are
    merged into the session totals (that is what the warm-cache manifest
    assertion keys on). A failed point re-raises its error — benchmarks
    are correctness tests, not best-effort sweeps.
    """
    executor = LabExecutor(jobs=JOBS)
    outcomes = executor.map(lab_bench.call_with_stats,
                            [(fn, item) for item in items])
    results = []
    for oc in outcomes:
        if not oc.ok:
            raise RuntimeError(
                f"benchmark point {items[oc.index]!r} failed: {oc.error}\n"
                f"{oc.detail}"
            )
        value, stats_delta = oc.value
        for key, delta in stats_delta.items():
            _SESSION_STATS[key] = _SESSION_STATS.get(key, 0) + delta
        results.append(value)
    return results


def write_lab_manifest() -> dict:
    """Persist the session's cache/executor statistics for inspection."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    manifest = {
        "jobs": JOBS,
        "cache_root": os.environ.get("REPRO_LAB_CACHE"),
        "cache": dict(_SESSION_STATS),
        "wall_time_s": round(time.monotonic() - _SESSION_T0, 3),
        "resyntheses": _SESSION_STATS["misses"],
        "warm": _SESSION_STATS["misses"] == 0,
    }
    path = os.path.join(RESULTS_DIR, "lab_manifest.json")
    with open(path, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return manifest


def pytest_terminal_summary(terminalreporter):
    """Echo every regenerated paper table into the terminal report, so a
    plain ``pytest benchmarks/ --benchmark-only`` run records them."""
    if not _SESSION_TABLES:
        return
    manifest = write_lab_manifest()
    terminalreporter.write_sep("=", "reproduced paper tables and figures")
    for text in _SESSION_TABLES:
        terminalreporter.write_line("")
        for line in text.split("\n"):
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
    terminalreporter.write_sep("-", "lab session")
    terminalreporter.write_line(
        f"jobs={manifest['jobs']} cache hits={manifest['cache']['hits']} "
        f"misses={manifest['cache']['misses']} "
        f"(re-syntheses this run: {manifest['resyntheses']}) "
        f"wall={manifest['wall_time_s']}s"
    )
