"""Benchmark harness plumbing: results directory + report helper."""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


_SESSION_TABLES: list[str] = []


def save_and_print(name: str, text: str) -> None:
    """Write a reproduction table both to stdout and to results/<name>.txt."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    _SESSION_TABLES.append(text)
    print()
    print(text)


def pytest_terminal_summary(terminalreporter):
    """Echo every regenerated paper table into the terminal report, so a
    plain ``pytest benchmarks/ --benchmark-only`` run records them."""
    if not _SESSION_TABLES:
        return
    terminalreporter.write_sep("=", "reproduced paper tables and figures")
    for text in _SESSION_TABLES:
        terminalreporter.write_line("")
        for line in text.split("\n"):
            terminalreporter.write_line(line)
