"""Table 2 — edge-detection assertion overhead (paper Section 5.2).

Paper: two image-size assertions on the pipelined 5x5 edge detector cost
at most +0.06% of the EP2S180 and left Fmax essentially unchanged (the
'Assert' build actually placed 1.8 MHz *faster* — run-to-run fitter
noise, which our deterministic placement jitter reproduces in kind).
"""

from conftest import lab_map, save_and_print

from repro.apps.edge_detect import build_edge_app
from repro.lab.bench import synth
from repro.platform.report import overhead_report


def _synth_level(level: str):
    return synth(build_edge_app(width=128, height=64), assertions=level)


def build_report():
    original, asserted = lab_map(_synth_level, ["none", "optimized"])
    return overhead_report(original, asserted)


def test_table2_edge_overhead(benchmark):
    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    save_and_print(
        "table2_edge",
        report.render("TABLE 2: EDGE-DETECTION ASSERTION OVERHEAD (EP2S180)")
        + "\npaper: every resource overhead <= +0.06%; Fmax ~unchanged (+2.32%)",
    )
    assert report.max_resource_overhead_pct < 0.13
    assert abs(report.fmax_overhead_pct) < 3.0
