"""Figure 4 — assertion frequency scalability (paper Section 5.3).

Paper: on the 128-process streaming loopback with one assertion per
process, unoptimized assertions (one failure stream per process) dropped
Fmax from 190.6 to 154 MHz (-18.8%), while the resource-sharing
optimization (32 assertions per 32-bit stream) recovered it to 189.3 MHz.
Frequencies were flat until ~32 processes.

This bench sweeps 1..128 processes across the three configurations in
parallel lab workers (one worker per size) and prints the Fmax series.
"""

from conftest import lab_map, save_and_print

from repro.apps.loopback import build_loopback
from repro.lab.bench import synth
from repro.platform.timing import estimate_fmax
from repro.utils.tables import render_table

SIZES = (1, 2, 4, 8, 16, 32, 64, 128)


def _point(n: int) -> dict:
    app = build_loopback(n)
    return {
        level: estimate_fmax(synth(app, assertions=level)).fmax_mhz
        for level in ("none", "unoptimized", "optimized")
    }


def sweep():
    rows = []
    series = {}
    for n, fmax in zip(SIZES, lab_map(_point, SIZES)):
        series[n] = fmax
        rows.append([
            n,
            f"{fmax['none']:.1f}",
            f"{fmax['unoptimized']:.1f}",
            f"{fmax['optimized']:.1f}",
        ])
    return rows, series


def test_fig4_frequency_scalability(benchmark):
    rows, series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["processes", "original MHz", "unoptimized MHz", "optimized MHz"],
        rows,
        title="FIGURE 4: ASSERTION FREQUENCY SCALABILITY",
    )
    at128 = series[128]
    summary = (
        f"\n@128: original {at128['none']:.1f}, unoptimized "
        f"{at128['unoptimized']:.1f} "
        f"({100 * (at128['unoptimized'] / at128['none'] - 1):+.1f}%), "
        f"optimized {at128['optimized']:.1f} "
        f"({100 * (at128['optimized'] / at128['none'] - 1):+.1f}%)"
        "\npaper @128: original 190.6, unoptimized 154 (-18.8%), optimized 189.3 (-0.7%)"
    )
    save_and_print("fig4_freq_scalability", table + summary)

    # shape assertions: unoptimized collapses, optimized tracks original
    unopt_drop = 1 - at128["unoptimized"] / at128["none"]
    opt_drop = 1 - at128["optimized"] / at128["none"]
    assert 0.10 < unopt_drop < 0.30
    assert abs(opt_drop) < 0.05
    # flat until the knee: <= 3% decline from 1 to 32 processes (original)
    decline = 1 - series[32]["none"] / series[1]["none"]
    assert decline < 0.03
    # monotone-ish growth of the unoptimized penalty with process count
    assert series[128]["unoptimized"] < series[32]["unoptimized"]
