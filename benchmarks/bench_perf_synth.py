"""Incremental-synthesis perf bench (cold vs warm vs edit-one-process).

Like ``bench_perf_sim.py`` this measures *our own tooling*: how much of
an app resynthesis the per-process artifact cache
(:mod:`repro.lab.incremental`) saves when the cache is warm, and when
exactly one process of an N-process pipeline has been edited. Every
timed leg is identity-checked first (``repro.lab.bench`` compares the
incremental images' resource/timing summaries and assertion decode
tables against fresh full resyntheses), so the numbers can only exist
if incremental and monolithic synthesis agree.

The run regenerates ``results/BENCH_synth.json``; that file is committed
as the CI baseline for ``repro bench --suite synth --baseline`` (speedup
*ratios* are machine-independent enough to gate on with a 30%
threshold).
"""

import json
import os

from conftest import RESULTS_DIR, save_and_print

from repro.lab.bench import render_synth_bench, run_synth_bench

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))


def test_incremental_synth_speedup(benchmark):
    doc = benchmark.pedantic(lambda: run_synth_bench(quick=QUICK),
                             rounds=1, iterations=1)
    save_and_print("bench_synth", render_synth_bench(doc))
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_synth.json"), "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")

    by_key = {(e["name"], e["kind"]): e for e in doc["entries"]}
    # acceptance floors are deliberately loose (the committed baseline
    # records the measured ratios; `repro bench --suite synth
    # --baseline` is the precise 30% regression gate): a warm hit skips
    # all N process syntheses and must beat cold by >=2x even with
    # assembly overhead; an edit rebuilds 1 of N and must still beat a
    # full cold resynthesis.
    for stages in (4, 8):
        warm = by_key[(f"pipeline{stages}", "synth_warm")]
        edit = by_key[(f"pipeline{stages}", "synth_edit")]
        assert warm["speedup"] > 2.0
        assert edit["speedup"] > 1.2
        assert edit["resyntheses"] == 1
    assert doc["geomean_speedup"] > 1.5
