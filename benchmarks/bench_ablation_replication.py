"""Ablation — resource replication tradeoff (paper Section 3.2).

"Resource replication provides the ability to reduce performance overhead
at the cost of increased area overhead."

We compare the optimized pipelined-array assertion with and without the
replication pass (each configuration is one cached lab point): replication
buys back the initiation interval (rate) at the price of a shadow block
RAM and its write port.
"""

from conftest import lab_map, save_and_print

from repro.core.synth import SynthesisOptions
from repro.lab.bench import synth
from repro.platform.resources import estimate_image
from repro.runtime.taskgraph import Application
from repro.utils.tables import render_table

SRC = """
void p(co_stream input, co_stream output) {
  uint32 x;
  uint32 i;
  uint32 buf[64];
  i = 0;
  #pragma CO PIPELINE
  while (co_stream_read(input, &x)) {
    buf[i & 63] = x;
    assert(buf[i & 63] < 60000);
    co_stream_write(output, buf[(i + 32) & 63]);
    i = i + 1;
  }
  co_stream_close(output);
}
"""

CONFIGS = [
    ("original (no assertions)", "none", True),
    ("optimized, no replication", "optimized", False),
    ("optimized + replication", "optimized", True),
]


def _point(args: tuple) -> tuple:
    label, level, replicate = args
    app = Application("abl")
    app.add_c_process(SRC, name="p", filename="a.c")
    app.feed("in", "p.input", data=[1])
    app.sink("out", "p.output")
    img = synth(app, assertions=level,
                options=SynthesisOptions(replicate=replicate))
    latency, rate = next(iter(img.compiled["p"].pipeline_report().values()))
    bram = estimate_image(img).total.bram_bits
    return label, latency, rate, bram


def sweep():
    rows = []
    results = {}
    for label, latency, rate, bram in lab_map(_point, CONFIGS):
        rows.append([label, latency, rate, bram])
        results[label] = (latency, rate, bram)
    return rows, results


def test_ablation_replication(benchmark):
    rows, results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["configuration", "latency", "rate", "BRAM bits"],
        rows,
        title="ABLATION: RESOURCE REPLICATION (pipelined array assertion)",
    )
    save_and_print("ablation_replication", table)
    base = results["original (no assertions)"]
    norep = results["optimized, no replication"]
    rep = results["optimized + replication"]
    # replication restores the rate (paper: 33% throughput improvement)...
    assert norep[1] == base[1] + 1
    assert rep[1] == base[1]
    # ...at the cost of one replicated block RAM
    assert rep[2] >= norep[2] + 64 * 32
