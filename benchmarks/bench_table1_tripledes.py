"""Table 1 — Triple-DES assertion overhead (paper Section 5.2).

Paper: two ASCII-range assertions added to the Impulse-C Triple-DES
decryptor cost at most +0.12% of the EP2S180 in any resource class and
-2.54% Fmax (145.7 -> 142.0 MHz).

This bench regenerates the table with our flow: the 'Original' column is
the application synthesized with assertions stripped (NDEBUG), the
'Assert' column uses the optimized in-circuit assertions (separate checker
pipeline + shared failure channel), matching the paper's configuration.
Both columns synthesize through the lab cache (conftest), so a warm rerun
reloads the images instead of recompiling them.
"""

from conftest import lab_map, save_and_print

from repro.apps.tripledes import build_tdes_app
from repro.lab.bench import synth
from repro.platform.report import overhead_report

TEXT = b"Now is the time for all good men"


def _synth_level(level: str):
    return synth(build_tdes_app(TEXT), assertions=level)


def build_report():
    original, asserted = lab_map(_synth_level, ["none", "optimized"])
    return overhead_report(original, asserted)


def test_table1_tripledes_overhead(benchmark):
    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    save_and_print(
        "table1_tripledes",
        report.render("TABLE 1: TRIPLE-DES ASSERTION OVERHEAD (EP2S180)")
        + "\npaper: every resource overhead <= +0.12%; Fmax -2.54%",
    )
    # reproduction targets: sub-0.13% resource overhead, |Fmax| < 3%
    assert report.max_resource_overhead_pct < 0.13
    assert abs(report.fmax_overhead_pct) < 3.0
