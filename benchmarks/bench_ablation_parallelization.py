"""Ablation — if-statement conversion vs parallel checker across assertion
complexity (paper Section 3.1).

"For Impulse-C, the delay of the assertion assert((j < ...) && (k > 0))
can add up to seven cycles of delay to the original application for each
execution of the assertion … the optimization reduced the overhead from
seven cycles to a single cycle."

This ablation sweeps assertion-condition complexity in a non-pipelined
loop and measures cycles/iteration for inline (unoptimized) vs
parallelized assertions, fanning the (condition, level, payload) grid out
across lab workers with cached synthesis. Inline cost grows with
complexity (extra states for chained logic and serialized array reads);
the parallelized cost stays flat at the data-extraction cost.
"""

from conftest import lab_map, save_and_print

from repro.lab.bench import synth
from repro.runtime.hwexec import execute
from repro.runtime.taskgraph import Application
from repro.utils.tables import render_table

CONDITIONS = [
    ("x > 0", "simple compare"),
    ("(x > 0) && (x < 60000)", "two terms"),
    ("(buf[x & 7] > 0) && (x < 60000)", "one array read"),
    ("(buf[x & 7] > 0) && (buf[(x + 1) & 7] < 60000) && (x != 60001)",
     "two array reads"),
    ("(buf[x & 7] + buf[(x + 1) & 7] > 0) && "
     "(buf[(x + 2) & 7] * buf[(x + 3) & 7] < 60000) && (x != 60001)",
     "four array reads + multiply"),
]

TEMPLATE = """
void p(co_stream input, co_stream output) {{
  uint32 x;
  uint16 buf[8];
  while (co_stream_read(input, &x)) {{
    buf[x & 7] = x;
    assert({cond});
    co_stream_write(output, x + 1);
  }}
  co_stream_close(output);
}}
"""

LEVELS = ("none", "unoptimized", "optimized")
N1, N2 = 32, 96


def _run_cycles(args: tuple) -> int:
    cond, level, n = args
    app = Application("abl")
    app.add_c_process(TEMPLATE.format(cond=cond), name="p", filename="a.c")
    app.feed("in", "p.input", data=list(range(1, n + 1)))
    app.sink("out", "p.output")
    res = execute(synth(app, assertions=level), max_cycles=400_000)
    assert res.completed
    return res.cycles


def sweep():
    points = [
        (cond, level, n)
        for cond, _label in CONDITIONS
        for level in LEVELS
        for n in (N1, N2)
    ]
    cycles = dict(zip(points, lab_map(_run_cycles, points)))

    def per_iter(cond: str, level: str) -> float:
        return (cycles[(cond, level, N2)] - cycles[(cond, level, N1)]) / (N2 - N1)

    rows = []
    for cond, label in CONDITIONS:
        base = per_iter(cond, "none")
        unopt = per_iter(cond, "unoptimized")
        opt = per_iter(cond, "optimized")
        rows.append([label, round(base, 1), round(unopt - base, 1),
                     round(opt - base, 1)])
    return rows


def test_ablation_parallelization(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["assertion condition", "baseline cyc/iter",
         "inline overhead", "parallelized overhead"],
        rows,
        title="ABLATION: INLINE IF-CONVERSION vs ASSERTION PARALLELIZATION",
    )
    save_and_print("ablation_parallelization", table)
    inline = [r[2] for r in rows]
    parallel = [r[3] for r in rows]
    # inline overhead grows with condition complexity...
    assert inline[-1] > inline[0]
    assert inline[-1] >= 4  # the paper's "up to seven cycles" regime
    # ...while the parallelized overhead is exactly the data-extraction
    # cost: one port cycle per array operand, zero for scalars
    array_reads = [0, 0, 1, 2, 4]
    assert parallel == array_reads
    assert all(p <= i for p, i in zip(parallel, inline))
