"""Ablation — the paper's Section 3.3 future-work extension, implemented.

"Resource sharing could potentially be extended to support an arbitrary
number of simultaneous assertions in multiple tasks by synthesizing a
pipelined assertion checker circuit … FIFOs (one buffer per assertion)
… processed in a round-robin manner. This extension requires additional
consideration of appropriate buffer sizes to avoid having to stall the
application tasks, and an appropriate partitioning of assertions into
assertion checker circuits, which we leave as future work."

We measure per-assertion checker overhead (one pipelined checker per
assertion) against the merged round-robin checker across group sizes
(each organization is one cached, executed lab point): merging pays off
in process overhead (FSMs, pipeline controllers) and keeps notification
latency bounded (a failure waits at most group-size cycles in its FIFO).
"""

from conftest import lab_map, save_and_print

from repro.apps.loopback import build_loopback
from repro.core.synth import SynthesisOptions
from repro.lab.bench import synth
from repro.platform.resources import estimate_image
from repro.runtime.hwexec import execute
from repro.utils.tables import render_table

N = 32
DATA = (7, 3, 9)

CONFIGS = [
    ("per-assertion checkers", SynthesisOptions(multichecker=False)),
    ("round-robin, groups of 8",
     SynthesisOptions(multichecker=True, multichecker_group=8)),
    ("round-robin, one group of 32",
     SynthesisOptions(multichecker=True, multichecker_group=32)),
]


def _point(args: tuple) -> tuple:
    label, opts = args
    app = build_loopback(N, data=list(DATA))
    if label == "base":
        return ("base", estimate_image(synth(app, assertions="none")).total)
    img = synth(app, assertions="optimized", options=opts)
    res = estimate_image(img).total
    n_procs = len(img.compiled)
    hw = execute(img)
    assert hw.completed and hw.outputs["drain"] == list(DATA)
    return (label, n_procs, res)


def sweep():
    results = lab_map(_point, [("base", None), *CONFIGS])
    base = results[0][1]
    rows = []
    outcomes = {}
    for label, n_procs, res in results[1:]:
        rows.append([
            label,
            n_procs,
            res.comb_aluts - base.comb_aluts,
            res.registers - base.registers,
        ])
        outcomes[label] = (n_procs, res.comb_aluts - base.comb_aluts)
    return rows, outcomes


def test_ablation_multichecker(benchmark):
    rows, outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["checker organization", "FPGA processes", "ALUT overhead",
         "register overhead"],
        rows,
        title=f"ABLATION: ROUND-ROBIN MULTI-ASSERTION CHECKER "
              f"({N} assertions)",
    )
    save_and_print("ablation_multichecker", table)
    per_assert = outcomes["per-assertion checkers"]
    merged = outcomes["round-robin, one group of 32"]
    # one checker + one arbiter replaces 32 checker processes
    assert merged[0] == per_assert[0] - N + 1
    # and the merged organization is not more expensive in logic
    assert merged[1] <= per_assert[1] * 1.1
