"""Table 3 — non-pipelined single-comparison assertion latency (Section 5.4).

Paper (latency overhead in cycles per assertion execution):

    Assertion data structure   Unoptimized   Optimized
    Scalar variable                 1            0
    Array (non-consecutive)         1            0
    Array (consecutive)             2            1

The numbers here are *measured*: each variant is synthesized at the three
assertion levels (through the lab cache) and executed cycle-accurately
with two payload sizes in parallel lab workers; the slope gives exact
steady-state cycles per loop iteration, so the overhead columns are
cycle-true, not estimated.
"""

from conftest import lab_map, save_and_print

from repro.lab.bench import synth
from repro.runtime.hwexec import execute
from repro.runtime.taskgraph import Application
from repro.utils.tables import render_table

SCALAR = """
void p(co_stream input, co_stream output) {
  uint32 x;
  uint32 y;
  while (co_stream_read(input, &x)) {
    y = x + 3;
    assert(y > 0);
    co_stream_write(output, y);
  }
  co_stream_close(output);
}
"""

# the application touched the array in an *earlier* state: the assertion's
# extract load finds a free port
ARRAY_NONCONSECUTIVE = """
void p(co_stream input, co_stream output) {
  uint32 x;
  uint16 buf[8];
  while (co_stream_read(input, &x)) {
    buf[x & 7] = x;
    co_stream_write(output, x + 1);
    assert(buf[x & 7] < 60000);
    co_stream_write(output, x + 2);
  }
  co_stream_close(output);
}
"""

# the application accesses the array immediately before the assertion: the
# accesses collide and serialize
ARRAY_CONSECUTIVE = """
void p(co_stream input, co_stream output) {
  uint32 x;
  uint16 buf[8];
  while (co_stream_read(input, &x)) {
    buf[x & 7] = x;
    assert(buf[x & 7] < 60000);
    co_stream_write(output, x + 1);
  }
  co_stream_close(output);
}
"""

ROWS = [
    ("Scalar variable", SCALAR, 1, 0),
    ("Array (non-consecutive)", ARRAY_NONCONSECUTIVE, 1, 0),
    ("Array (consecutive)", ARRAY_CONSECUTIVE, 2, 1),
]

LEVELS = ("none", "unoptimized", "optimized")
N1, N2 = 32, 96


def _run_cycles(args: tuple) -> int:
    src, level, n = args
    app = Application("t3")
    app.add_c_process(src, name="p", filename="t3.c")
    app.feed("in", "p.input", data=list(range(1, n + 1)))
    app.sink("out", "p.output")
    result = execute(synth(app, assertions=level), max_cycles=200_000)
    assert result.completed
    return result.cycles


def measure():
    points = [
        (src, level, n)
        for _label, src, _pu, _po in ROWS
        for level in LEVELS
        for n in (N1, N2)
    ]
    cycles = dict(zip(points, lab_map(_run_cycles, points)))

    def per_iter(src: str, level: str) -> float:
        return (cycles[(src, level, N2)] - cycles[(src, level, N1)]) / (N2 - N1)

    rows = []
    deltas = []
    for label, src, paper_unopt, paper_opt in ROWS:
        base = per_iter(src, "none")
        unopt = per_iter(src, "unoptimized")
        opt = per_iter(src, "optimized")
        d_unopt = round(unopt - base)
        d_opt = round(opt - base)
        rows.append([label, d_unopt, d_opt,
                     f"(paper: {paper_unopt} / {paper_opt})"])
        deltas.append((label, d_unopt, d_opt, paper_unopt, paper_opt))
    return rows, deltas


def test_table3_nonpipelined_latency(benchmark):
    rows, deltas = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = render_table(
        ["Assertion data structure", "Unoptimized", "Optimized", ""],
        rows,
        title="TABLE 3: NON-PIPELINED SINGLE-COMPARISON ASSERTION "
              "(measured latency overhead, cycles)",
    )
    save_and_print("table3_nonpipelined", table)
    for label, d_unopt, d_opt, paper_unopt, paper_opt in deltas:
        assert d_unopt == paper_unopt, (label, d_unopt)
        assert d_opt == paper_opt, (label, d_opt)
